package uncertain

import (
	"math"
	"testing"

	"uncertts/internal/stats"
	"uncertts/internal/timeseries"
)

func flatSeries(n int, id int) timeseries.Series {
	s := timeseries.New(make([]float64, n))
	s.ID = id
	return s
}

func TestErrorFamilyMake(t *testing.T) {
	for _, f := range AllErrorFamilies() {
		d := f.Make(0.7)
		if !almostEqual(d.Mean(), 0, 1e-12) {
			t.Errorf("%v: mean %v", f, d.Mean())
		}
		if !almostEqual(math.Sqrt(d.Variance()), 0.7, 1e-12) {
			t.Errorf("%v: stddev %v", f, math.Sqrt(d.Variance()))
		}
	}
	if Normal.String() != "normal" || Uniform.String() != "uniform" || Exponential.String() != "exponential" {
		t.Error("family names wrong")
	}
	if ErrorFamily(42).String() == "" {
		t.Error("unknown family should still stringify")
	}
}

func TestErrorFamilyMakePanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Make on unknown family should panic")
		}
	}()
	ErrorFamily(42).Make(1)
}

func TestConstantPerturberErrors(t *testing.T) {
	if _, err := NewConstantPerturber(Normal, 0.5, 0, 1); err == nil {
		t.Error("n=0 should error")
	}
	if _, err := NewConstantPerturber(Normal, 0, 5, 1); err == nil {
		t.Error("sigma=0 should error")
	}
	if _, err := NewConstantPerturber(Normal, -1, 5, 1); err == nil {
		t.Error("negative sigma should error")
	}
}

func TestPerturbPDFStatistics(t *testing.T) {
	// Perturbing a zero series should yield observations distributed like
	// the error itself.
	const n = 20000
	p, err := NewConstantPerturber(Normal, 0.5, n, 99)
	if err != nil {
		t.Fatal(err)
	}
	ps := p.PerturbPDF(flatSeries(n, 0))
	if err := ps.Validate(); err != nil {
		t.Fatal(err)
	}
	mu := stats.Mean(ps.Observations)
	sd := stats.StdDevOf(ps.Observations)
	if math.Abs(mu) > 0.02 {
		t.Errorf("perturbed mean = %v, want about 0", mu)
	}
	if math.Abs(sd-0.5) > 0.02 {
		t.Errorf("perturbed stddev = %v, want about 0.5", sd)
	}
}

func TestPerturbIsDeterministic(t *testing.T) {
	s := flatSeries(100, 7)
	p1, _ := NewConstantPerturber(Uniform, 1, 100, 123)
	p2, _ := NewConstantPerturber(Uniform, 1, 100, 123)
	a := p1.PerturbPDF(s)
	b := p2.PerturbPDF(s)
	for i := range a.Observations {
		if a.Observations[i] != b.Observations[i] {
			t.Fatal("same seed must give identical perturbation")
		}
	}
	p3, _ := NewConstantPerturber(Uniform, 1, 100, 124)
	c := p3.PerturbPDF(s)
	same := true
	for i := range a.Observations {
		if a.Observations[i] != c.Observations[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should give different perturbations")
	}
}

func TestPerturbIndependentOfProcessingOrder(t *testing.T) {
	p, _ := NewConstantPerturber(Normal, 1, 10, 5)
	s3 := flatSeries(10, 3)
	s9 := flatSeries(10, 9)
	a := p.PerturbPDF(s3)
	_ = p.PerturbPDF(s9)
	b := p.PerturbPDF(s3)
	for i := range a.Observations {
		if a.Observations[i] != b.Observations[i] {
			t.Fatal("perturbation of a series must depend only on (seed, series ID)")
		}
	}
}

func TestPerturbSamples(t *testing.T) {
	p, _ := NewConstantPerturber(Exponential, 0.4, 50, 11)
	ss, err := p.PerturbSamples(flatSeries(50, 1), 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := ss.Validate(); err != nil {
		t.Fatal(err)
	}
	if ss.Len() != 50 || ss.SamplesPerTimestamp() != 5 {
		t.Errorf("shape wrong: len=%d s=%d", ss.Len(), ss.SamplesPerTimestamp())
	}
	if _, err := p.PerturbSamples(flatSeries(50, 1), 0); err == nil {
		t.Error("0 samples per timestamp should error")
	}
	// Mean over many samples approximates the truth (0).
	all := 0.0
	count := 0
	for _, row := range ss.Samples {
		for _, v := range row {
			all += v
			count++
		}
	}
	if got := all / float64(count); math.Abs(got) > 0.1 {
		t.Errorf("overall sample mean = %v, want about 0", got)
	}
}

func TestMixedPerturberHighFraction(t *testing.T) {
	const n = 1000
	spec := MixedSigmaSpec{
		Fraction:  0.2,
		SigmaHigh: 1.0,
		SigmaLow:  0.4,
		Families:  []ErrorFamily{Normal},
	}
	p, err := NewMixedPerturber(spec, n, 77)
	if err != nil {
		t.Fatal(err)
	}
	high := 0
	for i := 0; i < n; i++ {
		sd := math.Sqrt(p.Dists[i].Variance())
		switch {
		case almostEqual(sd, 1.0, 1e-9):
			high++
		case almostEqual(sd, 0.4, 1e-9):
		default:
			t.Fatalf("unexpected sigma %v at %d", sd, i)
		}
	}
	if high != 200 {
		t.Errorf("high-sigma count = %d, want exactly 200", high)
	}
}

func TestMixedPerturberMultipleFamilies(t *testing.T) {
	spec := MixedSigmaSpec{
		Fraction:  0.2,
		SigmaHigh: 1.0,
		SigmaLow:  0.4,
		Families:  AllErrorFamilies(),
	}
	p, err := NewMixedPerturber(spec, 600, 3)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, d := range p.Dists {
		switch d.(type) {
		case stats.Normal:
			seen["normal"] = true
		case stats.Uniform:
			seen["uniform"] = true
		case stats.Exponential:
			seen["exponential"] = true
		default:
			t.Fatalf("unexpected dist type %T", d)
		}
	}
	if len(seen) != 3 {
		t.Errorf("expected all three families to appear, saw %v", seen)
	}
}

func TestMixedPerturberValidation(t *testing.T) {
	base := MixedSigmaSpec{Fraction: 0.2, SigmaHigh: 1, SigmaLow: 0.4, Families: []ErrorFamily{Normal}}
	if _, err := NewMixedPerturber(base, 0, 1); err == nil {
		t.Error("n=0 should error")
	}
	bad := base
	bad.Fraction = 1.5
	if _, err := NewMixedPerturber(bad, 10, 1); err == nil {
		t.Error("fraction > 1 should error")
	}
	bad = base
	bad.SigmaLow = 0
	if _, err := NewMixedPerturber(bad, 10, 1); err == nil {
		t.Error("zero sigma should error")
	}
	bad = base
	bad.Families = nil
	if _, err := NewMixedPerturber(bad, 10, 1); err == nil {
		t.Error("no families should error")
	}
}

func TestPerturbDatasets(t *testing.T) {
	ds := timeseries.Dataset{Name: "toy"}
	for i := 0; i < 4; i++ {
		s := flatSeries(20, i)
		ds.Series = append(ds.Series, s)
	}
	p, _ := NewConstantPerturber(Normal, 1, 20, 42)
	pdf := p.PerturbDatasetPDF(ds)
	if pdf.Len() != 4 || pdf.Name != "toy" {
		t.Errorf("PDF dataset wrong: %d %q", pdf.Len(), pdf.Name)
	}
	smp, err := p.PerturbDatasetSamples(ds, 3)
	if err != nil {
		t.Fatal(err)
	}
	if smp.Len() != 4 {
		t.Errorf("sample dataset wrong: %d", smp.Len())
	}
	if _, err := p.PerturbDatasetSamples(ds, -1); err == nil {
		t.Error("invalid samples count should propagate")
	}
}

func TestReportedAndMisreportedDists(t *testing.T) {
	p, _ := NewConstantPerturber(Normal, 0.9, 10, 1)
	rep := p.ReportedDists(10)
	for _, d := range rep {
		if !almostEqual(math.Sqrt(d.Variance()), 0.9, 1e-12) {
			t.Errorf("reported sigma = %v", math.Sqrt(d.Variance()))
		}
	}
	mis := MisreportSigma(Normal, 0.7, 5)
	if len(mis) != 5 {
		t.Fatalf("len = %d", len(mis))
	}
	for _, d := range mis {
		if !almostEqual(math.Sqrt(d.Variance()), 0.7, 1e-12) {
			t.Errorf("misreported sigma = %v", math.Sqrt(d.Variance()))
		}
	}
}

func TestPerturberCyclicDists(t *testing.T) {
	// A perturber built for length 5 applied to a length-10 series repeats
	// the assignment rather than panicking.
	p, _ := NewConstantPerturber(Normal, 1, 5, 1)
	ps := p.PerturbPDF(flatSeries(10, 0))
	if err := ps.Validate(); err != nil {
		t.Fatal(err)
	}
	if ps.Len() != 10 {
		t.Errorf("len = %d", ps.Len())
	}
}
