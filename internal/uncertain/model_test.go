package uncertain

import (
	"math"
	"testing"

	"uncertts/internal/stats"
	"uncertts/internal/timeseries"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol
}

func TestPDFSeriesValidate(t *testing.T) {
	good := PDFSeries{
		Observations: []float64{1, 2},
		Errors:       []stats.Dist{stats.NewNormal(0, 1), stats.NewNormal(0, 1)},
	}
	if err := good.Validate(); err != nil {
		t.Errorf("valid series rejected: %v", err)
	}
	if err := (PDFSeries{}).Validate(); err == nil {
		t.Error("empty series should fail validation")
	}
	bad := PDFSeries{Observations: []float64{1, 2}, Errors: []stats.Dist{stats.NewNormal(0, 1)}}
	if err := bad.Validate(); err == nil {
		t.Error("mismatched lengths should fail validation")
	}
	nilErr := PDFSeries{Observations: []float64{1}, Errors: []stats.Dist{nil}}
	if err := nilErr.Validate(); err == nil {
		t.Error("nil error distribution should fail validation")
	}
}

func TestPDFSeriesSigmas(t *testing.T) {
	p := PDFSeries{
		Observations: []float64{0, 0, 0},
		Errors: []stats.Dist{
			stats.NewNormal(0, 0.5),
			stats.NewUniformByStdDev(1.5),
			stats.NewExponentialByStdDev(2),
		},
	}
	want := []float64{0.5, 1.5, 2}
	for i, w := range want {
		if !almostEqual(p.Sigma(i), w, 1e-12) {
			t.Errorf("Sigma(%d) = %v, want %v", i, p.Sigma(i), w)
		}
	}
	sig := p.Sigmas()
	for i, w := range want {
		if !almostEqual(sig[i], w, 1e-12) {
			t.Errorf("Sigmas()[%d] = %v, want %v", i, sig[i], w)
		}
	}
}

func TestValueDistSymmetricError(t *testing.T) {
	// With a symmetric zero-mean error, the value distribution is centered
	// on the observation.
	p := PDFSeries{
		Observations: []float64{3},
		Errors:       []stats.Dist{stats.NewNormal(0, 0.5)},
	}
	v := p.ValueDist(0)
	if !almostEqual(v.Mean(), 3, 1e-12) {
		t.Errorf("value mean = %v, want 3", v.Mean())
	}
	if !almostEqual(v.Variance(), 0.25, 1e-12) {
		t.Errorf("value variance = %v, want 0.25", v.Variance())
	}
	if !almostEqual(v.CDF(3), 0.5, 1e-12) {
		t.Errorf("value CDF at observation = %v, want 0.5", v.CDF(3))
	}
}

func TestValueDistAsymmetricError(t *testing.T) {
	// Exponential error is right-skewed (observation overshoots truth more
	// often than it undershoots... actually the error has a long right
	// tail), so the true value given the observation has a long *left* tail.
	p := PDFSeries{
		Observations: []float64{0},
		Errors:       []stats.Dist{stats.NewExponentialByStdDev(1)},
	}
	v := p.ValueDist(0)
	if !almostEqual(v.Mean(), 0, 1e-12) {
		t.Errorf("value mean = %v, want 0", v.Mean())
	}
	// Density must vanish for truth > observation + shift (error below its
	// lower bound).
	if v.PDF(1.01) != 0 {
		t.Errorf("density above obs+shift should be 0, got %v", v.PDF(1.01))
	}
	if v.PDF(-3) <= 0 {
		t.Error("left tail should have positive density")
	}
	lo, hi := v.Support()
	if hi > 1.01 || lo > -30 {
		t.Errorf("support = [%v, %v] looks wrong", lo, hi)
	}
}

func TestShiftedNegatedSampleAndQuantile(t *testing.T) {
	base := stats.NewExponentialByStdDev(1)
	sn := ShiftedNegated{Base: base, Offset: 2}
	rng := stats.NewRand(5)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += sn.Sample(rng)
	}
	if got := sum / n; !almostEqual(got, 2, 0.02) {
		t.Errorf("sample mean = %v, want 2", got)
	}
	// Quantile/CDF round trip.
	for _, p := range []float64{0.1, 0.5, 0.9} {
		x := sn.Quantile(p)
		if !almostEqual(sn.CDF(x), p, 1e-9) {
			t.Errorf("CDF(Quantile(%v)) = %v", p, sn.CDF(x))
		}
	}
	if sn.String() == "" {
		t.Error("String should not be empty")
	}
}

func TestSampleSeriesValidate(t *testing.T) {
	good := SampleSeries{Samples: [][]float64{{1, 2}, {3, 4}}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid sample series rejected: %v", err)
	}
	if err := (SampleSeries{}).Validate(); err == nil {
		t.Error("empty sample series should fail")
	}
	bad := SampleSeries{Samples: [][]float64{{1}, {}}}
	if err := bad.Validate(); err == nil {
		t.Error("timestamp with no observations should fail")
	}
}

func TestSampleSeriesHelpers(t *testing.T) {
	s := SampleSeries{Samples: [][]float64{{1, 3}, {5, 5, 5}}}
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
	if s.SamplesPerTimestamp() != 3 {
		t.Errorf("SamplesPerTimestamp = %d, want 3", s.SamplesPerTimestamp())
	}
	means := s.Means()
	if !almostEqual(means[0], 2, 1e-12) || !almostEqual(means[1], 5, 1e-12) {
		t.Errorf("Means = %v", means)
	}
	lo, hi := s.MinMaxAt(0)
	if lo != 1 || hi != 3 {
		t.Errorf("MinMaxAt = %v, %v", lo, hi)
	}
}

func TestFromExact(t *testing.T) {
	s := timeseries.New([]float64{1, 2, 3})
	s.Label = 7
	s.ID = 11
	d := stats.NewNormal(0, 0.3)
	p := FromExact(s, d)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Label != 7 || p.ID != 11 {
		t.Error("metadata not preserved")
	}
	for i := range p.Observations {
		if p.Observations[i] != s.Values[i] {
			t.Error("observations should equal the exact values")
		}
		if p.Errors[i] != stats.Dist(d) {
			t.Error("error distributions should be the supplied one")
		}
	}
	// Mutating the wrapper must not touch the original.
	p.Observations[0] = 99
	if s.Values[0] != 1 {
		t.Error("FromExact must copy values")
	}
}
