// Package uncertain defines the two uncertain time-series models the paper
// compares (Section 2) and the perturbation engine that manufactures
// uncertain series from exact ground truth (Section 4.1.1):
//
//   - PDFSeries: one observation per timestamp plus a per-timestamp error
//     distribution — the model consumed by PROUD and DUST (paper Figure 1).
//   - SampleSeries: repeated observations per timestamp — the model consumed
//     by MUNICH (paper Figure 2).
package uncertain

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"uncertts/internal/stats"
	"uncertts/internal/timeseries"
)

// ErrEmpty is returned when an uncertain series has no timestamps.
var ErrEmpty = errors.New("uncertain: empty series")

// PDFSeries models an uncertain time series as a sequence of random
// variables t_i = Observations[i] - error_i, where error_i follows
// Errors[i]. Observations are what a sensor actually reported; the true
// value is unknown.
type PDFSeries struct {
	// Observations holds the single observed value per timestamp.
	Observations []float64
	// Errors holds the error distribution at each timestamp. Errors[i]
	// describes observation-minus-truth at timestamp i.
	Errors []stats.Dist
	// Label carries the class label of the underlying exact series.
	Label int
	// ID identifies the series within its dataset.
	ID int
}

// Len returns the number of timestamps.
func (p PDFSeries) Len() int { return len(p.Observations) }

// Validate checks structural invariants.
func (p PDFSeries) Validate() error {
	if len(p.Observations) == 0 {
		return ErrEmpty
	}
	if len(p.Observations) != len(p.Errors) {
		return fmt.Errorf("uncertain: PDFSeries %d: %d observations but %d error distributions", p.ID, len(p.Observations), len(p.Errors))
	}
	for i, e := range p.Errors {
		if e == nil {
			return fmt.Errorf("uncertain: PDFSeries %d: nil error distribution at timestamp %d", p.ID, i)
		}
	}
	return nil
}

// Sigma returns the error standard deviation at timestamp i.
func (p PDFSeries) Sigma(i int) float64 { return math.Sqrt(p.Errors[i].Variance()) }

// Sigmas returns the per-timestamp error standard deviations.
func (p PDFSeries) Sigmas() []float64 {
	out := make([]float64, p.Len())
	for i := range out {
		out[i] = p.Sigma(i)
	}
	return out
}

// ValueDist returns the distribution of the *true* value at timestamp i
// implied by the observation and the error model: truth = observation -
// error (the error distribution describes observation minus truth).
func (p PDFSeries) ValueDist(i int) stats.Dist {
	return ShiftedNegated{Base: p.Errors[i], Offset: p.Observations[i]}
}

// ShiftedNegated is the distribution of (Offset - X) where X ~ Base. It is
// the posterior of the true value given an observation under a known error
// distribution (with a flat prior), which is exactly what DUST's phi
// integral needs.
type ShiftedNegated struct {
	Base   stats.Dist
	Offset float64
}

// PDF returns the density of Offset - X at x.
func (s ShiftedNegated) PDF(x float64) float64 { return s.Base.PDF(s.Offset - x) }

// CDF returns P(Offset - X <= x) = P(X >= Offset - x) = 1 - CDF_X(Offset-x)
// for continuous X.
func (s ShiftedNegated) CDF(x float64) float64 { return 1 - s.Base.CDF(s.Offset-x) }

// Quantile inverts the CDF: Q(p) = Offset - Q_X(1-p).
func (s ShiftedNegated) Quantile(p float64) float64 { return s.Offset - s.Base.Quantile(1-p) }

// Sample draws Offset - X.
func (s ShiftedNegated) Sample(rng *rand.Rand) float64 { return s.Offset - s.Base.Sample(rng) }

// Mean returns Offset - E[X].
func (s ShiftedNegated) Mean() float64 { return s.Offset - s.Base.Mean() }

// Variance returns Var[X].
func (s ShiftedNegated) Variance() float64 { return s.Base.Variance() }

// Support reflects and shifts the base support.
func (s ShiftedNegated) Support() (float64, float64) {
	lo, hi := s.Base.Support()
	return s.Offset - hi, s.Offset - lo
}

func (s ShiftedNegated) String() string {
	return fmt.Sprintf("%g - %v", s.Offset, s.Base)
}

// SampleSeries models an uncertain time series by repeated observations:
// Samples[i] lists the s observations recorded at timestamp i (paper
// Figure 2, the MUNICH input model).
type SampleSeries struct {
	// Samples[i][j] is the j-th observation at timestamp i.
	Samples [][]float64
	// Label carries the class label of the underlying exact series.
	Label int
	// ID identifies the series within its dataset.
	ID int
}

// Len returns the number of timestamps.
func (s SampleSeries) Len() int { return len(s.Samples) }

// SamplesPerTimestamp returns the (maximum) number of observations per
// timestamp.
func (s SampleSeries) SamplesPerTimestamp() int {
	max := 0
	for _, obs := range s.Samples {
		if len(obs) > max {
			max = len(obs)
		}
	}
	return max
}

// Validate checks structural invariants: at least one timestamp and at least
// one observation everywhere.
func (s SampleSeries) Validate() error {
	if len(s.Samples) == 0 {
		return ErrEmpty
	}
	for i, obs := range s.Samples {
		if len(obs) == 0 {
			return fmt.Errorf("uncertain: SampleSeries %d: no observations at timestamp %d", s.ID, i)
		}
	}
	return nil
}

// Means returns the per-timestamp sample means, the natural single-value
// reduction of the repeated-observation model.
func (s SampleSeries) Means() []float64 {
	out := make([]float64, len(s.Samples))
	for i, obs := range s.Samples {
		out[i] = stats.Mean(obs)
	}
	return out
}

// MinMaxAt returns the smallest and largest observation at timestamp i;
// these are the "minimal bounding intervals" MUNICH uses for pruning.
func (s SampleSeries) MinMaxAt(i int) (float64, float64) {
	return stats.MinMax(s.Samples[i])
}

// PDFDataset is a collection of PDFSeries, the perturbed counterpart of a
// timeseries.Dataset.
type PDFDataset struct {
	Name   string
	Series []PDFSeries
}

// Len returns the number of series.
func (d PDFDataset) Len() int { return len(d.Series) }

// SampleDataset is a collection of SampleSeries.
type SampleDataset struct {
	Name   string
	Series []SampleSeries
}

// Len returns the number of series.
func (d SampleDataset) Len() int { return len(d.Series) }

// FromExact wraps an exact series as a degenerate PDFSeries whose errors all
// have the given distribution. It is the bridge used when a technique needs
// an uncertainty model for the query side.
func FromExact(s timeseries.Series, err stats.Dist) PDFSeries {
	obs := make([]float64, s.Len())
	copy(obs, s.Values)
	errs := make([]stats.Dist, s.Len())
	for i := range errs {
		errs[i] = err
	}
	return PDFSeries{Observations: obs, Errors: errs, Label: s.Label, ID: s.ID}
}
