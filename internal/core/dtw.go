package core

import (
	"fmt"

	"uncertts/internal/distance"
	"uncertts/internal/dust"
	"uncertts/internal/munich"
)

// Section 3.2 of the paper notes that "MUNICH and DUST can be employed to
// compute the Dynamic Time Warping distance". The matchers below put those
// DTW variants on the common similarity-matching task, alongside a plain
// Euclidean-observations DTW baseline.

// DTWMatcher is the DTW analogue of the Euclidean baseline: DTW over the
// perturbed observations, threshold calibrated in DTW space.
type DTWMatcher struct {
	distanceMatcher
	// Band is the Sakoe-Chiba half-width; negative means unconstrained.
	Band int
}

// NewDTWMatcher returns an unconstrained DTW baseline matcher.
func NewDTWMatcher() *DTWMatcher { return &DTWMatcher{Band: -1} }

// Prepare binds the workload.
func (m *DTWMatcher) Prepare(w *Workload) error {
	m.w = w
	if m.Band < 0 {
		m.name = "DTW"
	} else {
		m.name = fmt.Sprintf("DTW(band=%d)", m.Band)
	}
	m.dist = func(qi, ci int) (float64, error) {
		return distance.DTWBand(w.PDF[qi].Observations, w.PDF[ci].Observations, m.Band)
	}
	return nil
}

// DUSTDTWMatcher combines per-timestamp dust values under dynamic time
// warping (Section 3.2's DUST+DTW combination).
type DUSTDTWMatcher struct {
	distanceMatcher
	// Opts configures the dust evaluator.
	Opts dust.Options
	d    *dust.Dust
}

// NewDUSTDTWMatcher returns a DUST-under-DTW matcher with default options.
func NewDUSTDTWMatcher() *DUSTDTWMatcher { return &DUSTDTWMatcher{} }

// Prepare builds the evaluator and binds the workload.
func (m *DUSTDTWMatcher) Prepare(w *Workload) error {
	m.w = w
	m.name = "DUST-DTW"
	m.d = dust.New(m.Opts)
	m.dist = func(qi, ci int) (float64, error) {
		return m.d.DistanceDTW(w.PDF[qi], w.PDF[ci])
	}
	return nil
}

// MUNICHDTWMatcher answers probabilistic range queries with the DTW inner
// distance, estimated by Monte Carlo over materialisations (the counting
// estimators require the per-timestamp decomposition that DTW breaks).
type MUNICHDTWMatcher struct {
	// Tau is the probability threshold.
	Tau float64
	// Samples is the Monte Carlo sample count (0 = estimator default).
	Samples int
	// Cache optionally shares pair probabilities (same rules as
	// MUNICHMatcher.Cache).
	Cache *MunichProbCache

	w *Workload
}

// NewMUNICHDTWMatcher returns the MUNICH+DTW matcher.
func NewMUNICHDTWMatcher(tau float64) *MUNICHDTWMatcher { return &MUNICHDTWMatcher{Tau: tau} }

// Name identifies the technique.
func (m *MUNICHDTWMatcher) Name() string { return fmt.Sprintf("MUNICH-DTW(tau=%g)", m.Tau) }

// Prepare binds the workload and checks the sample model exists.
func (m *MUNICHDTWMatcher) Prepare(w *Workload) error {
	if m.Tau <= 0 || m.Tau > 1 {
		return fmt.Errorf("core: MUNICH-DTW tau %v outside (0, 1]", m.Tau)
	}
	if w.Samples == nil {
		return fmt.Errorf("core: MUNICH-DTW requires a workload with SamplesPerTS > 0")
	}
	m.w = w
	return nil
}

// Match answers the probabilistic range query for query index qi.
func (m *MUNICHDTWMatcher) Match(qi int) ([]int, error) {
	if m.w == nil {
		return nil, ErrNotPrepared
	}
	eps := m.w.EpsEucl(qi)
	opts := munich.Options{
		Estimator:         munich.EstimatorMonteCarlo,
		UseDTW:            true,
		MonteCarloSamples: m.Samples,
	}
	var out []int
	for ci := range m.w.Samples {
		if ci == qi {
			continue
		}
		var p float64
		if m.Cache != nil {
			if cached, ok := m.Cache.get(qi, ci); ok {
				p = cached
				if p >= m.Tau {
					out = append(out, ci)
				}
				continue
			}
		}
		p, err := munich.Probability(m.w.Samples[qi], m.w.Samples[ci], eps, opts)
		if err != nil {
			return nil, fmt.Errorf("core: MUNICH-DTW candidate %d: %w", ci, err)
		}
		if m.Cache != nil {
			m.Cache.put(qi, ci, p)
		}
		if p >= m.Tau {
			out = append(out, ci)
		}
	}
	return out, nil
}
