package core

import (
	"testing"

	"uncertts/internal/query"
	"uncertts/internal/ucr"
	"uncertts/internal/uncertain"
)

func TestDTWMatcherBasics(t *testing.T) {
	w := testWorkload(t, 0.3, 0)
	m := NewDTWMatcher()
	ms, err := Evaluate(w, m, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if query.AverageMetrics(ms).F1 <= 0 {
		t.Error("DTW matcher produced zero F1 on an easy workload")
	}
	if m.Name() != "DTW" {
		t.Errorf("name = %q", m.Name())
	}
	banded := &DTWMatcher{Band: 3}
	msB, err := Evaluate(w, banded, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if banded.Name() != "DTW(band=3)" {
		t.Errorf("banded name = %q", banded.Name())
	}
	_ = msB
}

func TestDUSTDTWMatcher(t *testing.T) {
	ds, _ := ucr.Generate("CBF", ucr.Options{MaxSeries: 14, Length: 32, Seed: 6})
	p, _ := uncertain.NewConstantPerturber(uncertain.Normal, 0.4, 32, 3)
	w, err := NewWorkload(ds, p, WorkloadConfig{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	m := NewDUSTDTWMatcher()
	ms, err := Evaluate(w, m, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if query.AverageMetrics(ms).F1 <= 0 {
		t.Error("DUST-DTW produced zero F1")
	}
	// Its pairwise distance must be no larger than lock-step DUST (DTW can
	// only improve an alignment).
	lock := NewDUSTMatcher()
	if err := lock.Prepare(w); err != nil {
		t.Fatal(err)
	}
	dLock, err := lock.Distance(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	dWarp, err := m.Distance(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if dWarp > dLock+1e-9 {
		t.Errorf("DUST-DTW (%v) exceeded lock-step DUST (%v)", dWarp, dLock)
	}
}

func TestMUNICHDTWMatcher(t *testing.T) {
	ds, _ := ucr.Generate("GunPoint", ucr.Options{MaxSeries: 10, Length: 6, Seed: 4})
	p, _ := uncertain.NewConstantPerturber(uncertain.Normal, 0.3, 6, 2)
	w, err := NewWorkload(ds, p, WorkloadConfig{K: 3, SamplesPerTS: 3})
	if err != nil {
		t.Fatal(err)
	}
	m := NewMUNICHDTWMatcher(0.5)
	m.Samples = 2000
	ms, err := Evaluate(w, m, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if query.AverageMetrics(ms).F1 < 0 {
		t.Error("MUNICH-DTW failed")
	}
	// Cache path: same results, fewer recomputations.
	cache := NewMunichProbCache()
	cachedM := &MUNICHDTWMatcher{Tau: 0.5, Samples: 2000, Cache: cache}
	ms2, err := Evaluate(w, cachedM, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if query.AverageMetrics(ms).F1 != query.AverageMetrics(ms2).F1 {
		t.Error("cached MUNICH-DTW diverged")
	}
	if cache.Len() == 0 {
		t.Error("cache unused")
	}
	ms3, err := Evaluate(w, &MUNICHDTWMatcher{Tau: 0.9, Samples: 2000, Cache: cache}, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Stricter tau cannot increase recall.
	for i := range ms2 {
		if ms3[i].Recall > ms2[i].Recall {
			t.Error("recall grew with stricter tau")
		}
	}
	// Validation paths.
	if err := NewMUNICHDTWMatcher(0).Prepare(w); err == nil {
		t.Error("tau=0 should be rejected")
	}
	noSamples := testWorkload(t, 0.3, 0)
	if err := NewMUNICHDTWMatcher(0.5).Prepare(noSamples); err == nil {
		t.Error("missing sample model should be rejected")
	}
	if _, err := NewMUNICHDTWMatcher(0.5).Match(0); err == nil {
		t.Error("unprepared matcher should error")
	}
}
