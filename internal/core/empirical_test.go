package core

import (
	"math"
	"testing"

	"uncertts/internal/query"
	"uncertts/internal/ucr"
	"uncertts/internal/uncertain"
)

func TestDUSTEmpiricalMatcher(t *testing.T) {
	ds, _ := ucr.Generate("CBF", ucr.Options{MaxSeries: 18, Length: 32, Seed: 12})
	p, _ := uncertain.NewConstantPerturber(uncertain.Normal, 0.5, 32, 8)
	w, err := NewWorkload(ds, p, WorkloadConfig{K: 4, SamplesPerTS: 6})
	if err != nil {
		t.Fatal(err)
	}
	m := NewDUSTEmpiricalMatcher()
	ms, err := Evaluate(w, m, []int{0, 1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	f1 := query.AverageMetrics(ms).F1
	if f1 <= 0.2 {
		t.Errorf("DUST-empirical F1 = %v, too low", f1)
	}

	// The estimated error distribution must be close to the truth. The
	// residuals are taken around per-timestamp sample means, which shrinks
	// the spread by sqrt(1 - 1/s) for s samples; with s=6 that is ~0.91.
	est := m.EstimatedError()
	if est == nil {
		t.Fatal("no estimated error after Prepare")
	}
	wantSD := 0.5 * math.Sqrt(1-1.0/6)
	if got := math.Sqrt(est.Variance()); math.Abs(got-wantSD) > 0.08 {
		t.Errorf("estimated error stddev = %v, want about %v", got, wantSD)
	}
	if math.Abs(est.Mean()) > 0.05 {
		t.Errorf("estimated error mean = %v, want about 0", est.Mean())
	}
}

func TestDUSTEmpiricalTracksKnowledgeableDUST(t *testing.T) {
	// With plenty of samples, estimated-error DUST should perform in the
	// same band as DUST given the true distribution.
	ds, _ := ucr.Generate("Trace", ucr.Options{MaxSeries: 16, Length: 40, Seed: 9})
	p, _ := uncertain.NewConstantPerturber(uncertain.Normal, 0.6, 40, 5)
	w, err := NewWorkload(ds, p, WorkloadConfig{K: 4, SamplesPerTS: 8})
	if err != nil {
		t.Fatal(err)
	}
	queries := []int{0, 1, 2, 3, 4, 5, 6, 7}
	knowing, err := Evaluate(w, NewDUSTMatcher(), queries)
	if err != nil {
		t.Fatal(err)
	}
	estimated, err := Evaluate(w, NewDUSTEmpiricalMatcher(), queries)
	if err != nil {
		t.Fatal(err)
	}
	kF1 := query.AverageMetrics(knowing).F1
	eF1 := query.AverageMetrics(estimated).F1
	if math.Abs(kF1-eF1) > 0.25 {
		t.Errorf("estimated-error DUST (%v) too far from knowledgeable DUST (%v)", eF1, kF1)
	}
}

func TestDUSTEmpiricalValidation(t *testing.T) {
	noSamples := testWorkload(t, 0.4, 0)
	if err := NewDUSTEmpiricalMatcher().Prepare(noSamples); err == nil {
		t.Error("missing sample model should be rejected")
	}
	oneSample := testWorkload(t, 0.4, 1)
	if err := NewDUSTEmpiricalMatcher().Prepare(oneSample); err == nil {
		t.Error("a single sample per timestamp should be rejected")
	}
	if _, err := NewDUSTEmpiricalMatcher().Match(0); err == nil {
		t.Error("unprepared matcher should error")
	}
}
