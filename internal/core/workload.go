// Package core is the heart of the reproduction: it places every similarity
// technique — Euclidean, MUNICH, PROUD, DUST, and the paper's own UMA/UEMA
// moving-average measures — on the single common task of Section 4.1.2:
// time-series similarity matching against a ground truth derived from the
// exact (unperturbed) data.
//
// The methodology, exactly as in the paper:
//
//  1. Take an exact dataset as ground truth; perturb it to obtain the
//     uncertain dataset every technique sees.
//  2. For each query q, find its K-th nearest neighbour c in the *exact*
//     data; eps_eucl(q) is the Euclidean distance q-to-c, and the ground
//     truth answer set is every exact series within eps_eucl(q).
//  3. For a non-Euclidean measure M, the equivalent threshold eps_M(q) is
//     the M-distance between q and c ("we define eps_eucl as the Euclidean
//     distance on the observations between q and c and eps_dust as the DUST
//     distance between q and c").
//  4. Each technique answers the range query on the *uncertain* data; the
//     answer is scored against the ground truth with precision/recall/F1.
package core

import (
	"errors"
	"fmt"
	"math"

	"uncertts/internal/corpus"
	"uncertts/internal/distance"
	"uncertts/internal/query"
	"uncertts/internal/stats"
	"uncertts/internal/timeseries"
	"uncertts/internal/uncertain"
)

// WorkloadConfig parameterises workload construction.
type WorkloadConfig struct {
	// K is the ground-truth neighbourhood size (the paper uses 10).
	K int
	// SamplesPerTS, when positive, also materialises the repeated-
	// observation model for MUNICH.
	SamplesPerTS int
	// ReportedErrors optionally overrides the per-timestamp error
	// distributions the techniques are told about (Figure 10's wrong-sigma
	// scenario). Nil means the techniques are told the truth.
	ReportedErrors []stats.Dist
	// ReportedSigma optionally overrides the single constant sigma PROUD
	// and the UMA/UEMA filters receive. Zero derives it from the reported
	// errors (root mean variance).
	ReportedSigma float64
}

// Workload bundles an exact dataset, its perturbed views, the reported
// uncertainty metadata, and the pre-computed ground truth.
//
// Since the corpus refactor a workload is a thin view: the perturbed data
// and every derived artifact live in an internal/corpus Corpus, and the
// public PDF/Samples/Sigmas fields alias one immutable snapshot of it
// (Snapshot()). The workload adds what only the evaluation methodology
// needs — the exact series, the ground-truth sets and the calibrated
// thresholds. Matchers and experiments keep reading the public fields
// exactly as before; engine construction goes through the snapshot and
// reuses the corpus' precomputed artifacts.
type Workload struct {
	// Exact holds the unperturbed ground-truth series.
	Exact []timeseries.Series
	// PDF holds one perturbed observation per timestamp per series, with
	// the *reported* error distributions attached (what techniques see).
	PDF []uncertain.PDFSeries
	// Samples holds the repeated-observation view for MUNICH (nil unless
	// requested).
	Samples []uncertain.SampleSeries
	// ReportedSigma is the constant error stddev PROUD/UMA/UEMA receive.
	ReportedSigma float64
	// Sigmas caches the per-timestamp reported error stddevs.
	Sigmas []float64
	// K is the ground-truth neighbourhood size.
	K int

	truth   [][]int   // per-query ground-truth ID sets
	calNN   []int     // per-query calibration neighbour (the K-th NN)
	epsEucl []float64 // per-query Euclidean threshold

	corpus *corpus.Corpus
	snap   *corpus.Snapshot
}

// NewWorkload perturbs the dataset and precomputes ground truth. The
// perturber must have been built for (at least) the dataset's series length.
func NewWorkload(exact timeseries.Dataset, p *uncertain.Perturber, cfg WorkloadConfig) (*Workload, error) {
	if len(exact.Series) == 0 {
		return nil, errors.New("core: empty dataset")
	}
	if cfg.K <= 0 {
		cfg.K = 10
	}
	if cfg.K >= len(exact.Series) {
		return nil, fmt.Errorf("core: K=%d requires more than %d series", cfg.K, len(exact.Series))
	}
	n := exact.Series[0].Len()
	for _, s := range exact.Series {
		if s.Len() != n {
			return nil, fmt.Errorf("core: series %d has length %d, want %d (workloads require aligned series)", s.ID, s.Len(), n)
		}
	}

	w := &Workload{
		Exact:         exact.Series,
		ReportedSigma: cfg.ReportedSigma,
		K:             cfg.K,
	}

	reported := cfg.ReportedErrors
	if reported == nil {
		reported = p.ReportedDists(n)
	}
	if len(reported) < n {
		return nil, fmt.Errorf("core: %d reported error distributions for length-%d series", len(reported), n)
	}
	w.Sigmas = make([]float64, n)
	for i := 0; i < n; i++ {
		w.Sigmas[i] = math.Sqrt(reported[i].Variance())
	}
	if w.ReportedSigma <= 0 {
		var acc float64
		for _, d := range reported {
			acc += d.Variance()
		}
		w.ReportedSigma = math.Sqrt(acc / float64(n))
	}

	// Perturb: observations from the true distributions, reported metadata
	// attached. The perturbed views are owned by a corpus; the workload's
	// PDF/Samples fields alias one snapshot of it.
	w.corpus = corpus.New(corpus.Config{
		Length:        n,
		ReportedSigma: w.ReportedSigma,
		Sigmas:        w.Sigmas,
		Errors:        reported[:n],
	})
	batch := make([]corpus.Series, len(exact.Series))
	for i, s := range exact.Series {
		ps := p.PerturbPDF(s)
		batch[i] = corpus.Series{Values: ps.Observations, Errors: reported[:n], Label: s.Label}
		if cfg.SamplesPerTS > 0 {
			ss, err := p.PerturbSamples(s, cfg.SamplesPerTS)
			if err != nil {
				return nil, err
			}
			batch[i].Samples = ss.Samples
		}
	}
	if _, err := w.corpus.InsertBatch(batch); err != nil {
		return nil, fmt.Errorf("core: populating corpus: %w", err)
	}
	w.snap = w.corpus.Snapshot()
	w.PDF = w.snap.PDFSeries()
	if cfg.SamplesPerTS > 0 {
		w.Samples = w.snap.SampleSeries()
	}

	// Ground truth per query. The truth set lives in the exact space: the
	// K nearest exact neighbours (every series within the K-th NN
	// distance). The *technique-facing* threshold eps_eucl, however, is the
	// Euclidean distance between the perturbed observations of q and that
	// K-th neighbour — "we define eps_eucl as the Euclidean distance on the
	// observations between q and c" (Section 4.1.2). Calibrating on the
	// observations is essential: perturbation inflates every pairwise
	// distance by roughly sqrt(2 n sigma^2), and a threshold calibrated on
	// exact distances would return empty answers for every technique.
	w.truth = make([][]int, len(exact.Series))
	w.calNN = make([]int, len(exact.Series))
	w.epsEucl = make([]float64, len(exact.Series))
	for qi, q := range exact.Series {
		nn, err := query.NearestNeighbors(q, exact.Series, cfg.K)
		if err != nil {
			return nil, fmt.Errorf("core: ground truth for query %d: %w", q.ID, err)
		}
		if len(nn) < cfg.K {
			return nil, fmt.Errorf("core: query %d has only %d neighbours, need %d", q.ID, len(nn), cfg.K)
		}
		kth := nn[cfg.K-1]
		w.calNN[qi] = kth.ID
		// A hair of slack keeps the K-th neighbour itself inside the truth
		// set despite sqrt/square rounding at the boundary.
		slack := kth.Distance * (1 + 1e-9)
		truth, err := query.RangeQuery(q, exact.Series, slack)
		if err != nil {
			return nil, err
		}
		w.truth[qi] = truth

		calIdx := w.CalibrationNeighbor(qi)
		obsDist, err := distance.Euclidean(w.PDF[qi].Observations, w.PDF[calIdx].Observations)
		if err != nil {
			return nil, fmt.Errorf("core: observation threshold for query %d: %w", q.ID, err)
		}
		w.epsEucl[qi] = obsDist
	}
	return w, nil
}

// Len returns the number of series.
func (w *Workload) Len() int { return len(w.Exact) }

// Corpus returns the mutable corpus backing the workload's perturbed
// views. Mutating it does not change the workload — the workload is a view
// of the snapshot taken at construction — but it lets a caller seed a
// serving corpus with an evaluated workload's data.
func (w *Workload) Corpus() *corpus.Corpus { return w.corpus }

// Snapshot returns the immutable corpus snapshot the workload's
// PDF/Samples/Sigmas fields alias. Engines built from it reuse the corpus'
// precomputed per-series artifacts.
func (w *Workload) Snapshot() *corpus.Snapshot { return w.snap }

// SeriesLen returns the common series length.
func (w *Workload) SeriesLen() int { return w.Exact[0].Len() }

// Truth returns the ground-truth answer set for query index qi.
func (w *Workload) Truth(qi int) []int { return w.truth[qi] }

// EpsEucl returns the calibrated Euclidean threshold for query index qi.
func (w *Workload) EpsEucl(qi int) float64 { return w.epsEucl[qi] }

// CalibrationNeighbor returns the index of the K-th exact nearest neighbour
// of query qi — the series used to translate thresholds between distance
// spaces.
func (w *Workload) CalibrationNeighbor(qi int) int {
	id := w.calNN[qi]
	// IDs equal slice indexes for datasets produced by this repository, but
	// be defensive: resolve by ID.
	if id >= 0 && id < len(w.Exact) && w.Exact[id].ID == id {
		return id
	}
	for i, s := range w.Exact {
		if s.ID == id {
			return i
		}
	}
	return -1
}
