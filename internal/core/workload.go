// Package core is the heart of the reproduction: it places every similarity
// technique — Euclidean, MUNICH, PROUD, DUST, and the paper's own UMA/UEMA
// moving-average measures — on the single common task of Section 4.1.2:
// time-series similarity matching against a ground truth derived from the
// exact (unperturbed) data.
//
// The methodology, exactly as in the paper:
//
//  1. Take an exact dataset as ground truth; perturb it to obtain the
//     uncertain dataset every technique sees.
//  2. For each query q, find its K-th nearest neighbour c in the *exact*
//     data; eps_eucl(q) is the Euclidean distance q-to-c, and the ground
//     truth answer set is every exact series within eps_eucl(q).
//  3. For a non-Euclidean measure M, the equivalent threshold eps_M(q) is
//     the M-distance between q and c ("we define eps_eucl as the Euclidean
//     distance on the observations between q and c and eps_dust as the DUST
//     distance between q and c").
//  4. Each technique answers the range query on the *uncertain* data; the
//     answer is scored against the ground truth with precision/recall/F1.
package core

import (
	"errors"
	"fmt"
	"math"

	"uncertts/internal/distance"
	"uncertts/internal/query"
	"uncertts/internal/stats"
	"uncertts/internal/timeseries"
	"uncertts/internal/uncertain"
)

// WorkloadConfig parameterises workload construction.
type WorkloadConfig struct {
	// K is the ground-truth neighbourhood size (the paper uses 10).
	K int
	// SamplesPerTS, when positive, also materialises the repeated-
	// observation model for MUNICH.
	SamplesPerTS int
	// ReportedErrors optionally overrides the per-timestamp error
	// distributions the techniques are told about (Figure 10's wrong-sigma
	// scenario). Nil means the techniques are told the truth.
	ReportedErrors []stats.Dist
	// ReportedSigma optionally overrides the single constant sigma PROUD
	// and the UMA/UEMA filters receive. Zero derives it from the reported
	// errors (root mean variance).
	ReportedSigma float64
}

// Workload bundles an exact dataset, its perturbed views, the reported
// uncertainty metadata, and the pre-computed ground truth.
type Workload struct {
	// Exact holds the unperturbed ground-truth series.
	Exact []timeseries.Series
	// PDF holds one perturbed observation per timestamp per series, with
	// the *reported* error distributions attached (what techniques see).
	PDF []uncertain.PDFSeries
	// Samples holds the repeated-observation view for MUNICH (nil unless
	// requested).
	Samples []uncertain.SampleSeries
	// ReportedSigma is the constant error stddev PROUD/UMA/UEMA receive.
	ReportedSigma float64
	// Sigmas caches the per-timestamp reported error stddevs.
	Sigmas []float64
	// K is the ground-truth neighbourhood size.
	K int

	truth   [][]int   // per-query ground-truth ID sets
	calNN   []int     // per-query calibration neighbour (the K-th NN)
	epsEucl []float64 // per-query Euclidean threshold
}

// NewWorkload perturbs the dataset and precomputes ground truth. The
// perturber must have been built for (at least) the dataset's series length.
func NewWorkload(exact timeseries.Dataset, p *uncertain.Perturber, cfg WorkloadConfig) (*Workload, error) {
	if len(exact.Series) == 0 {
		return nil, errors.New("core: empty dataset")
	}
	if cfg.K <= 0 {
		cfg.K = 10
	}
	if cfg.K >= len(exact.Series) {
		return nil, fmt.Errorf("core: K=%d requires more than %d series", cfg.K, len(exact.Series))
	}
	n := exact.Series[0].Len()
	for _, s := range exact.Series {
		if s.Len() != n {
			return nil, fmt.Errorf("core: series %d has length %d, want %d (workloads require aligned series)", s.ID, s.Len(), n)
		}
	}

	w := &Workload{
		Exact:         exact.Series,
		ReportedSigma: cfg.ReportedSigma,
		K:             cfg.K,
	}

	reported := cfg.ReportedErrors
	if reported == nil {
		reported = p.ReportedDists(n)
	}
	if len(reported) < n {
		return nil, fmt.Errorf("core: %d reported error distributions for length-%d series", len(reported), n)
	}
	w.Sigmas = make([]float64, n)
	for i := 0; i < n; i++ {
		w.Sigmas[i] = math.Sqrt(reported[i].Variance())
	}
	if w.ReportedSigma <= 0 {
		var acc float64
		for _, d := range reported {
			acc += d.Variance()
		}
		w.ReportedSigma = math.Sqrt(acc / float64(n))
	}

	// Perturb: observations from the true distributions, reported metadata
	// attached.
	w.PDF = make([]uncertain.PDFSeries, len(exact.Series))
	for i, s := range exact.Series {
		ps := p.PerturbPDF(s)
		ps.Errors = reported[:n]
		w.PDF[i] = ps
	}
	if cfg.SamplesPerTS > 0 {
		w.Samples = make([]uncertain.SampleSeries, len(exact.Series))
		for i, s := range exact.Series {
			ss, err := p.PerturbSamples(s, cfg.SamplesPerTS)
			if err != nil {
				return nil, err
			}
			w.Samples[i] = ss
		}
	}

	// Ground truth per query. The truth set lives in the exact space: the
	// K nearest exact neighbours (every series within the K-th NN
	// distance). The *technique-facing* threshold eps_eucl, however, is the
	// Euclidean distance between the perturbed observations of q and that
	// K-th neighbour — "we define eps_eucl as the Euclidean distance on the
	// observations between q and c" (Section 4.1.2). Calibrating on the
	// observations is essential: perturbation inflates every pairwise
	// distance by roughly sqrt(2 n sigma^2), and a threshold calibrated on
	// exact distances would return empty answers for every technique.
	w.truth = make([][]int, len(exact.Series))
	w.calNN = make([]int, len(exact.Series))
	w.epsEucl = make([]float64, len(exact.Series))
	for qi, q := range exact.Series {
		nn, err := query.NearestNeighbors(q, exact.Series, cfg.K)
		if err != nil {
			return nil, fmt.Errorf("core: ground truth for query %d: %w", q.ID, err)
		}
		if len(nn) < cfg.K {
			return nil, fmt.Errorf("core: query %d has only %d neighbours, need %d", q.ID, len(nn), cfg.K)
		}
		kth := nn[cfg.K-1]
		w.calNN[qi] = kth.ID
		// A hair of slack keeps the K-th neighbour itself inside the truth
		// set despite sqrt/square rounding at the boundary.
		slack := kth.Distance * (1 + 1e-9)
		truth, err := query.RangeQuery(q, exact.Series, slack)
		if err != nil {
			return nil, err
		}
		w.truth[qi] = truth

		calIdx := w.CalibrationNeighbor(qi)
		obsDist, err := distance.Euclidean(w.PDF[qi].Observations, w.PDF[calIdx].Observations)
		if err != nil {
			return nil, fmt.Errorf("core: observation threshold for query %d: %w", q.ID, err)
		}
		w.epsEucl[qi] = obsDist
	}
	return w, nil
}

// Len returns the number of series.
func (w *Workload) Len() int { return len(w.Exact) }

// SeriesLen returns the common series length.
func (w *Workload) SeriesLen() int { return w.Exact[0].Len() }

// Truth returns the ground-truth answer set for query index qi.
func (w *Workload) Truth(qi int) []int { return w.truth[qi] }

// EpsEucl returns the calibrated Euclidean threshold for query index qi.
func (w *Workload) EpsEucl(qi int) float64 { return w.epsEucl[qi] }

// CalibrationNeighbor returns the index of the K-th exact nearest neighbour
// of query qi — the series used to translate thresholds between distance
// spaces.
func (w *Workload) CalibrationNeighbor(qi int) int {
	id := w.calNN[qi]
	// IDs equal slice indexes for datasets produced by this repository, but
	// be defensive: resolve by ID.
	if id >= 0 && id < len(w.Exact) && w.Exact[id].ID == id {
		return id
	}
	for i, s := range w.Exact {
		if s.ID == id {
			return i
		}
	}
	return -1
}
