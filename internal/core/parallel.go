package core

import (
	"fmt"
	"runtime"

	"uncertts/internal/query"
)

// EvaluateParallel is Evaluate with the per-query work fanned out across
// workers goroutines (0 = GOMAXPROCS) via the RunSharded work-stealing
// executor. Results are identical to Evaluate — per-query metrics in query
// order — because queries are independent: every matcher in this package is
// safe for concurrent Match calls after a single Prepare (shared state is
// read-only or mutex-guarded, like the DUST tables).
func EvaluateParallel(w *Workload, m Matcher, queries []int, workers int) ([]query.Metrics, error) {
	if err := m.Prepare(w); err != nil {
		return nil, fmt.Errorf("core: preparing %s: %w", m.Name(), err)
	}
	if queries == nil {
		queries = make([]int, w.Len())
		for i := range queries {
			queries[i] = i
		}
	}
	for _, qi := range queries {
		if qi < 0 || qi >= w.Len() {
			return nil, fmt.Errorf("core: query index %d outside [0, %d)", qi, w.Len())
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	if workers <= 1 {
		return Evaluate(w, m, queries)
	}

	out := make([]query.Metrics, len(queries))
	err := RunSharded(len(queries), 1, workers, func(lo, hi int) error {
		for idx := lo; idx < hi; idx++ {
			met, err := EvaluateQuery(w, m, queries[idx])
			if err != nil {
				return fmt.Errorf("core: %s on query %d: %w", m.Name(), queries[idx], err)
			}
			out[idx] = met
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
