package core

import (
	"math"
	"testing"

	"uncertts/internal/query"
	"uncertts/internal/stats"
	"uncertts/internal/timeseries"
	"uncertts/internal/ucr"
	"uncertts/internal/uncertain"
)

// testWorkload builds a small CBF-based workload with normal errors.
func testWorkload(t *testing.T, sigma float64, samplesPerTS int) *Workload {
	t.Helper()
	ds, err := ucr.Generate("CBF", ucr.Options{MaxSeries: 30, Length: 48, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	p, err := uncertain.NewConstantPerturber(uncertain.Normal, sigma, 48, 101)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorkload(ds, p, WorkloadConfig{K: 5, SamplesPerTS: samplesPerTS})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestNewWorkloadGroundTruth(t *testing.T) {
	w := testWorkload(t, 0.3, 0)
	if w.Len() != 30 || w.SeriesLen() != 48 {
		t.Fatalf("workload shape %d x %d", w.Len(), w.SeriesLen())
	}
	for qi := 0; qi < w.Len(); qi++ {
		truth := w.Truth(qi)
		if len(truth) < w.K {
			t.Errorf("query %d: truth has %d entries, want >= %d", qi, len(truth), w.K)
		}
		for _, id := range truth {
			if id == qi {
				t.Errorf("query %d: truth contains the query itself", qi)
			}
		}
		if w.EpsEucl(qi) <= 0 {
			t.Errorf("query %d: eps = %v", qi, w.EpsEucl(qi))
		}
		cal := w.CalibrationNeighbor(qi)
		if cal < 0 || cal == qi {
			t.Errorf("query %d: calibration neighbour %d", qi, cal)
		}
		// The calibration neighbour must be in the truth set (it defines
		// the threshold).
		found := false
		for _, id := range truth {
			if id == cal {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("query %d: calibration neighbour %d not in truth %v", qi, cal, truth)
		}
	}
}

func TestNewWorkloadValidation(t *testing.T) {
	p, _ := uncertain.NewConstantPerturber(uncertain.Normal, 1, 10, 1)
	if _, err := NewWorkload(timeseries.Dataset{}, p, WorkloadConfig{}); err == nil {
		t.Error("empty dataset should error")
	}
	tiny := timeseries.Dataset{Series: []timeseries.Series{timeseries.New([]float64{1, 2})}}
	if _, err := NewWorkload(tiny, p, WorkloadConfig{K: 5}); err == nil {
		t.Error("K >= len should error")
	}
	ragged := timeseries.Dataset{Series: []timeseries.Series{
		timeseries.New([]float64{1, 2}),
		timeseries.New([]float64{1, 2, 3}),
	}}
	if _, err := NewWorkload(ragged, p, WorkloadConfig{K: 1}); err == nil {
		t.Error("ragged lengths should error")
	}
}

func TestWorkloadReportedSigmaDerived(t *testing.T) {
	w := testWorkload(t, 0.7, 0)
	if math.Abs(w.ReportedSigma-0.7) > 1e-9 {
		t.Errorf("derived sigma = %v, want 0.7", w.ReportedSigma)
	}
	for _, s := range w.Sigmas {
		if math.Abs(s-0.7) > 1e-9 {
			t.Errorf("per-timestamp sigma = %v", s)
		}
	}
}

func TestWorkloadMisreportedErrors(t *testing.T) {
	ds, _ := ucr.Generate("CBF", ucr.Options{MaxSeries: 12, Length: 32, Seed: 3})
	p, _ := uncertain.NewConstantPerturber(uncertain.Normal, 1.0, 32, 9)
	wrong := uncertain.MisreportSigma(uncertain.Normal, 0.5, 32)
	w, err := NewWorkload(ds, p, WorkloadConfig{K: 3, ReportedErrors: wrong})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w.ReportedSigma-0.5) > 1e-9 {
		t.Errorf("reported sigma = %v, want the misreported 0.5", w.ReportedSigma)
	}
	// The PDF series must carry the misreported distributions.
	if math.Abs(w.PDF[0].Sigma(0)-0.5) > 1e-9 {
		t.Errorf("PDF series sigma = %v, want 0.5", w.PDF[0].Sigma(0))
	}
}

func TestEuclideanMatcherPerfectWithoutNoise(t *testing.T) {
	// With negligible perturbation, the Euclidean matcher must reproduce
	// the ground truth almost exactly.
	w := testWorkload(t, 1e-9, 0)
	ms, err := Evaluate(w, NewEuclideanMatcher(), nil)
	if err != nil {
		t.Fatal(err)
	}
	avg := query.AverageMetrics(ms)
	if avg.F1 < 0.999 {
		t.Errorf("noise-free Euclidean F1 = %v, want ~1", avg.F1)
	}
}

func TestMatchersDegradeWithNoise(t *testing.T) {
	lowNoise := testWorkload(t, 0.2, 0)
	highNoise := testWorkload(t, 2.0, 0)
	for _, mk := range []func() Matcher{
		func() Matcher { return NewEuclideanMatcher() },
		func() Matcher { return NewDUSTMatcher() },
		func() Matcher { return NewUMAMatcher(2) },
		func() Matcher { return NewUEMAMatcher(2, 1) },
	} {
		lowMs, err := Evaluate(lowNoise, mk(), nil)
		if err != nil {
			t.Fatal(err)
		}
		highMs, err := Evaluate(highNoise, mk(), nil)
		if err != nil {
			t.Fatal(err)
		}
		lo := query.AverageMetrics(lowMs).F1
		hi := query.AverageMetrics(highMs).F1
		if hi >= lo {
			t.Errorf("%s: F1 should degrade with noise: sigma=0.2 gives %v, sigma=2 gives %v",
				mk().Name(), lo, hi)
		}
	}
}

func TestUMABeatsEuclideanUnderNoise(t *testing.T) {
	// The paper's headline: the moving-average measures beat raw Euclidean
	// under meaningful noise because they exploit temporal correlation.
	w := testWorkload(t, 1.0, 0)
	eu, err := Evaluate(w, NewEuclideanMatcher(), nil)
	if err != nil {
		t.Fatal(err)
	}
	uma, err := Evaluate(w, NewUMAMatcher(2), nil)
	if err != nil {
		t.Fatal(err)
	}
	uema, err := Evaluate(w, NewUEMAMatcher(2, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	euF1 := query.AverageMetrics(eu).F1
	umaF1 := query.AverageMetrics(uma).F1
	uemaF1 := query.AverageMetrics(uema).F1
	if umaF1 <= euF1 {
		t.Errorf("UMA (%v) should beat Euclidean (%v) at sigma=1", umaF1, euF1)
	}
	if uemaF1 <= euF1 {
		t.Errorf("UEMA (%v) should beat Euclidean (%v) at sigma=1", uemaF1, euF1)
	}
}

func TestPROUDMatcher(t *testing.T) {
	w := testWorkload(t, 0.4, 0)
	// PROUD needs its tau calibrated (the paper uses "the optimal
	// probabilistic threshold tau determined after repeated experiments").
	tau, _, err := CalibrateTau(w, func(tau float64) Matcher {
		return NewPROUDMatcher(tau)
	}, []int{0, 1, 2, 3, 4, 5, 6, 7}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := Evaluate(w, NewPROUDMatcher(tau), nil)
	if err != nil {
		t.Fatal(err)
	}
	f1 := query.AverageMetrics(ms).F1
	if f1 < 0.3 {
		t.Errorf("PROUD F1 = %v at calibrated tau=%v, unreasonably low at sigma=0.4", f1, tau)
	}
	bad := NewPROUDMatcher(0)
	if err := bad.Prepare(w); err == nil {
		t.Error("tau=0 should be rejected")
	}
	if _, err := NewPROUDMatcher(0.5).Match(0); err == nil {
		t.Error("unprepared matcher should error")
	}
}

func TestPROUDSynopsisVariant(t *testing.T) {
	w := testWorkload(t, 0.4, 0)
	m := &PROUDMatcher{Tau: 0.5, UseSynopsis: true, Coeffs: 16}
	ms, err := Evaluate(w, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if query.AverageMetrics(ms).F1 < 0.2 {
		t.Errorf("PROUD-wavelet F1 = %v, too low", query.AverageMetrics(ms).F1)
	}
	if m.Name() == "" {
		t.Error("name should not be empty")
	}
}

func TestMUNICHMatcher(t *testing.T) {
	ds, _ := ucr.Generate("GunPoint", ucr.Options{MaxSeries: 15, Length: 6, Seed: 5})
	p, _ := uncertain.NewConstantPerturber(uncertain.Normal, 0.3, 6, 4)
	w, err := NewWorkload(ds, p, WorkloadConfig{K: 3, SamplesPerTS: 5})
	if err != nil {
		t.Fatal(err)
	}
	ms, err := Evaluate(w, NewMUNICHMatcher(0.5), nil)
	if err != nil {
		t.Fatal(err)
	}
	if query.AverageMetrics(ms).F1 <= 0 {
		t.Error("MUNICH should produce non-zero F1 on an easy workload")
	}
	// Requires the sample model.
	noSamples := testWorkload(t, 0.3, 0)
	if err := NewMUNICHMatcher(0.5).Prepare(noSamples); err == nil {
		t.Error("missing sample model should be rejected")
	}
	if err := NewMUNICHMatcher(0).Prepare(w); err == nil {
		t.Error("tau=0 should be rejected")
	}
	if _, err := NewMUNICHMatcher(0.5).Match(0); err == nil {
		t.Error("unprepared matcher should error")
	}
}

func TestFilteredMatcherKinds(t *testing.T) {
	w := testWorkload(t, 0.5, 0)
	for _, m := range []*FilteredMatcher{
		NewMAMatcher(2),
		NewEMAMatcher(2, 0.5),
		NewUMAMatcher(2),
		NewUEMAMatcher(2, 0.5),
	} {
		ms, err := Evaluate(w, m, nil)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if query.AverageMetrics(ms).F1 <= 0 {
			t.Errorf("%s: zero F1", m.Name())
		}
	}
	bad := &FilteredMatcher{Kind: FilterKind(99)}
	if err := bad.Prepare(w); err == nil {
		t.Error("unknown filter kind should error at Prepare")
	}
}

func TestFilterKindString(t *testing.T) {
	want := map[FilterKind]string{
		FilterMA: "MA", FilterEMA: "EMA", FilterUMA: "UMA", FilterUEMA: "UEMA",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q", int(k), k.String())
		}
	}
	if FilterKind(12).String() == "" {
		t.Error("unknown kind should still stringify")
	}
}

func TestEvaluateQuerySubset(t *testing.T) {
	w := testWorkload(t, 0.3, 0)
	ms, err := Evaluate(w, NewEuclideanMatcher(), []int{0, 3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 {
		t.Errorf("want 3 metric rows, got %d", len(ms))
	}
	if _, err := Evaluate(w, NewEuclideanMatcher(), []int{99}); err == nil {
		t.Error("out-of-range query index should error")
	}
}

func TestCalibrateTau(t *testing.T) {
	w := testWorkload(t, 0.5, 0)
	tau, f1, err := CalibrateTau(w, func(tau float64) Matcher {
		return NewPROUDMatcher(tau)
	}, []int{0, 1, 2, 3, 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tau <= 0 || tau >= 1 {
		t.Errorf("calibrated tau = %v", tau)
	}
	if f1 < 0 || f1 > 1 {
		t.Errorf("calibrated F1 = %v", f1)
	}
	// Custom grid must be honoured.
	tau2, _, err := CalibrateTau(w, func(tau float64) Matcher {
		return NewPROUDMatcher(tau)
	}, []int{0, 1}, []float64{0.42})
	if err != nil || tau2 != 0.42 {
		t.Errorf("single-point grid: tau=%v err=%v", tau2, err)
	}
}

func TestDUSTMatcherMixedErrors(t *testing.T) {
	// DUST must run with per-timestamp mixed error distributions (its
	// distinguishing capability).
	ds, _ := ucr.Generate("CBF", ucr.Options{MaxSeries: 14, Length: 32, Seed: 21})
	spec := uncertain.MixedSigmaSpec{
		Fraction:  0.2,
		SigmaHigh: 1.0,
		SigmaLow:  0.4,
		Families:  []uncertain.ErrorFamily{uncertain.Normal},
	}
	p, err := uncertain.NewMixedPerturber(spec, 32, 8)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorkload(ds, p, WorkloadConfig{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	ms, err := Evaluate(w, NewDUSTMatcher(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if query.AverageMetrics(ms).F1 <= 0 {
		t.Error("DUST with mixed errors produced zero F1")
	}
	// Reported sigma should be the root mean variance of the mixture.
	wantVar := 0.2*1.0 + 0.8*0.16
	if math.Abs(w.ReportedSigma-math.Sqrt(wantVar)) > 0.02 {
		t.Errorf("reported sigma %v, want about %v", w.ReportedSigma, math.Sqrt(wantVar))
	}
	_ = stats.Dist(nil) // keep the import for clarity of intent
}
