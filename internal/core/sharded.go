package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"uncertts/internal/qerr"
)

// RunSharded executes fn over contiguous chunks of the index space [0, n):
// the space is split into ceil(n/chunk) chunks and workers goroutines pull
// the next unclaimed chunk off a shared atomic cursor until none remain —
// chunked work stealing, without a channel send per item. It generalises
// the per-query fan-out of EvaluateParallel: callers shard whatever they
// like (queries, candidate ranges, query x shard pairs) into the flat index
// space.
//
// chunk <= 0 picks a size that gives each worker several chunks to steal
// (good load balancing without contention on the cursor); workers <= 0 uses
// GOMAXPROCS. fn is called as fn(lo, hi) for each chunk [lo, hi) and must
// be safe for concurrent invocation on disjoint ranges. After the first
// error, workers stop claiming new chunks; the error reported is the one
// from the lowest-indexed failed chunk.
func RunSharded(n, chunk, workers int, fn func(lo, hi int) error) error {
	return RunShardedCtx(context.Background(), n, chunk, workers, fn)
}

// RunShardedCtx is RunSharded under a context: workers poll ctx at every
// chunk boundary, stop claiming chunks once it is cancelled, drain (the
// call does not return while any fn invocation is still running) and
// report a qerr.Cancelled error wrapping ctx.Err(). Work already completed
// is not rolled back; a run whose last chunk was claimed before the
// cancellation landed completes normally and returns nil. Promptness
// within a chunk is the callee's business: long-running fn bodies that
// want mid-chunk cancellation should poll ctx.Done() themselves.
func RunShardedCtx(ctx context.Context, n, chunk, workers int, fn func(lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if chunk <= 0 {
		chunk = n / (workers * 4)
		if chunk < 1 {
			chunk = 1
		}
	}
	numChunks := (n + chunk - 1) / chunk
	if workers > numChunks {
		workers = numChunks
	}
	done := ctx.Done()
	if workers <= 1 {
		for c := 0; c < numChunks; c++ {
			select {
			case <-done:
				return qerr.Cancelled(ctx.Err())
			default:
			}
			lo := c * chunk
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			if err := fn(lo, hi); err != nil {
				return err
			}
		}
		return nil
	}

	errs := make([]error, numChunks)
	var cursor atomic.Int64
	var failed atomic.Bool
	var cancelled atomic.Bool
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					cancelled.Store(true)
					return
				default:
				}
				c := int(cursor.Add(1)) - 1
				if c >= numChunks || failed.Load() {
					return
				}
				lo := c * chunk
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				if err := fn(lo, hi); err != nil {
					errs[c] = err
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if cancelled.Load() {
		return qerr.Cancelled(ctx.Err())
	}
	return nil
}
