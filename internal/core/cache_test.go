package core

import (
	"testing"

	"uncertts/internal/query"
	"uncertts/internal/ucr"
	"uncertts/internal/uncertain"
)

func TestMunichProbCacheConsistency(t *testing.T) {
	ds, _ := ucr.Generate("GunPoint", ucr.Options{MaxSeries: 12, Length: 6, Seed: 15})
	p, _ := uncertain.NewConstantPerturber(uncertain.Normal, 0.4, 6, 2)
	w, err := NewWorkload(ds, p, WorkloadConfig{K: 3, SamplesPerTS: 4})
	if err != nil {
		t.Fatal(err)
	}
	queries := []int{0, 1, 2}

	// Cached and uncached matchers must produce identical answers.
	cache := NewMunichProbCache()
	cached, err := Evaluate(w, &MUNICHMatcher{Tau: 0.5, Cache: cache}, queries)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Evaluate(w, &MUNICHMatcher{Tau: 0.5}, queries)
	if err != nil {
		t.Fatal(err)
	}
	if query.AverageMetrics(cached).F1 != query.AverageMetrics(plain).F1 {
		t.Errorf("cached F1 %v != uncached %v",
			query.AverageMetrics(cached).F1, query.AverageMetrics(plain).F1)
	}
	if cache.Len() == 0 {
		t.Error("cache was never populated")
	}

	// A second tau over the same cache must not change the probabilities:
	// rerunning with tau so small everything passes should match the
	// number of candidates exactly.
	filled := cache.Len()
	all, err := Evaluate(w, &MUNICHMatcher{Tau: 1e-12, Cache: cache}, queries)
	if err != nil {
		t.Fatal(err)
	}
	if cache.Len() != filled {
		t.Errorf("second sweep grew the cache: %d -> %d", filled, cache.Len())
	}
	for i, m := range all {
		// tau ~ 0 accepts everything with probability > 0; recall must be
		// at least that of tau = 0.5.
		if m.Recall < cached[i].Recall {
			t.Errorf("query %d: recall decreased when tau shrank: %v < %v",
				queries[i], m.Recall, cached[i].Recall)
		}
	}
}
