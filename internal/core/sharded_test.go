package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"uncertts/internal/qerr"
)

func TestRunShardedCoversEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 1000} {
		for _, chunk := range []int{0, 1, 3, 64, 5000} {
			for _, workers := range []int{0, 1, 2, 8, 64} {
				hits := make([]int32, n)
				err := RunSharded(n, chunk, workers, func(lo, hi int) error {
					if lo < 0 || hi > n || lo >= hi {
						t.Errorf("bad range [%d, %d) for n=%d", lo, hi, n)
					}
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&hits[i], 1)
					}
					return nil
				})
				if err != nil {
					t.Fatalf("n=%d chunk=%d workers=%d: %v", n, chunk, workers, err)
				}
				for i, h := range hits {
					if h != 1 {
						t.Fatalf("n=%d chunk=%d workers=%d: index %d hit %d times", n, chunk, workers, i, h)
					}
				}
			}
		}
	}
}

func TestRunShardedPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		err := RunSharded(100, 10, workers, func(lo, hi int) error {
			if lo == 50 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: got %v, want boom", workers, err)
		}
	}
}

func TestRunShardedStopsClaimingAfterError(t *testing.T) {
	// With a single worker the executor must stop at the failing chunk.
	var ran atomic.Int64
	err := RunSharded(100, 10, 1, func(lo, hi int) error {
		ran.Add(1)
		if lo == 20 {
			return errors.New("stop here")
		}
		return nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	if got := ran.Load(); got != 3 {
		t.Fatalf("single worker ran %d chunks after failure at the third, want 3", got)
	}
}

func TestRunShardedCtxCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		errCh := make(chan error, 1)
		var releaseOnce sync.Once
		release := make(chan struct{})
		go func() {
			errCh <- RunShardedCtx(ctx, 1000, 1, workers, func(lo, hi int) error {
				ran.Add(1)
				releaseOnce.Do(func() { close(release) })
				<-ctx.Done() // hold every claimed chunk until the cancel
				return nil
			})
		}()
		<-release
		cancel()
		err := <-errCh
		if !errors.Is(err, qerr.ErrCancelled) || !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want ErrCancelled wrapping context.Canceled", workers, err)
		}
		// Workers must stop claiming promptly: far fewer chunks than the
		// total ran.
		if got := ran.Load(); got >= 1000 {
			t.Fatalf("workers=%d: all %d chunks ran despite cancellation", workers, got)
		}
	}
}

func TestRunShardedCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := RunShardedCtx(ctx, 100, 10, 4, func(lo, hi int) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, qerr.ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if got := ran.Load(); got != 0 {
		t.Fatalf("%d chunks ran under a pre-cancelled context", got)
	}
}

func TestRunShardedCtxCompletesWithoutCancel(t *testing.T) {
	var ran atomic.Int64
	err := RunShardedCtx(context.Background(), 100, 10, 4, func(lo, hi int) error {
		ran.Add(int64(hi - lo))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := ran.Load(); got != 100 {
		t.Fatalf("ran %d items, want 100", got)
	}
}
