package core

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestRunShardedCoversEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 1000} {
		for _, chunk := range []int{0, 1, 3, 64, 5000} {
			for _, workers := range []int{0, 1, 2, 8, 64} {
				hits := make([]int32, n)
				err := RunSharded(n, chunk, workers, func(lo, hi int) error {
					if lo < 0 || hi > n || lo >= hi {
						t.Errorf("bad range [%d, %d) for n=%d", lo, hi, n)
					}
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&hits[i], 1)
					}
					return nil
				})
				if err != nil {
					t.Fatalf("n=%d chunk=%d workers=%d: %v", n, chunk, workers, err)
				}
				for i, h := range hits {
					if h != 1 {
						t.Fatalf("n=%d chunk=%d workers=%d: index %d hit %d times", n, chunk, workers, i, h)
					}
				}
			}
		}
	}
}

func TestRunShardedPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		err := RunSharded(100, 10, workers, func(lo, hi int) error {
			if lo == 50 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: got %v, want boom", workers, err)
		}
	}
}

func TestRunShardedStopsClaimingAfterError(t *testing.T) {
	// With a single worker the executor must stop at the failing chunk.
	var ran atomic.Int64
	err := RunSharded(100, 10, 1, func(lo, hi int) error {
		ran.Add(1)
		if lo == 20 {
			return errors.New("stop here")
		}
		return nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	if got := ran.Load(); got != 3 {
		t.Fatalf("single worker ran %d chunks after failure at the third, want 3", got)
	}
}
