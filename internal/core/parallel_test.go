package core

import (
	"reflect"
	"sync"
	"testing"
)

func TestEvaluateParallelMatchesSerial(t *testing.T) {
	w := testWorkload(t, 0.5, 0)
	for _, mk := range []func() Matcher{
		func() Matcher { return NewEuclideanMatcher() },
		func() Matcher { return NewDUSTMatcher() },
		func() Matcher { return NewUEMAMatcher(2, 1) },
		func() Matcher { return NewPROUDMatcher(0.1) },
	} {
		serial, err := Evaluate(w, mk(), nil)
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := EvaluateParallel(w, mk(), nil, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, parallel) {
			t.Errorf("%s: parallel results differ from serial", mk().Name())
		}
	}
}

func TestEvaluateParallelWorkerEdgeCases(t *testing.T) {
	w := testWorkload(t, 0.4, 0)
	// workers=0 defaults to GOMAXPROCS, workers > queries clamps, and a
	// single worker falls back to the serial path.
	for _, workers := range []int{0, 1, 100} {
		ms, err := EvaluateParallel(w, NewEuclideanMatcher(), []int{0, 1, 2}, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(ms) != 3 {
			t.Fatalf("workers=%d: got %d rows", workers, len(ms))
		}
	}
	if _, err := EvaluateParallel(w, NewEuclideanMatcher(), []int{999}, 2); err == nil {
		t.Error("out-of-range query should error")
	}
	if _, err := EvaluateParallel(w, NewPROUDMatcher(0), nil, 2); err == nil {
		t.Error("prepare failure should propagate")
	}
}

func TestEvaluateParallelErrorPropagates(t *testing.T) {
	// A matcher whose Match fails mid-run must surface the error.
	w := testWorkload(t, 0.4, 0)
	m := &failingMatcher{failAt: 3}
	if err := m.Prepare(w); err != nil {
		t.Fatal(err)
	}
	if _, err := EvaluateParallel(w, m, []int{0, 1, 2, 3, 4}, 3); err == nil {
		t.Error("expected the injected failure to propagate")
	}
}

// failingMatcher fails on one specific query index; used for failure
// injection.
type failingMatcher struct {
	w      *Workload
	failAt int
}

func (m *failingMatcher) Name() string { return "failing" }
func (m *failingMatcher) Prepare(w *Workload) error {
	m.w = w
	return nil
}
func (m *failingMatcher) Match(qi int) ([]int, error) {
	if qi == m.failAt {
		return nil, errInjected
	}
	return nil, nil
}

var errInjected = &injectedError{}

type injectedError struct{}

func (*injectedError) Error() string { return "injected failure" }

func TestEvaluateParallelDeterministicUnderWorkerCounts(t *testing.T) {
	// Run with -race in CI: the same prepared matcher is driven from many
	// worker counts and from concurrent callers, and every run must produce
	// the sequential answer bit for bit.
	w := testWorkload(t, 0.5, 0)
	m := NewUEMAMatcher(2, 1)
	serial, err := Evaluate(w, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 5, 16} {
		got, err := EvaluateParallel(w, m, nil, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, serial) {
			t.Errorf("workers=%d: results differ from sequential", workers)
		}
	}
	// Concurrent callers need their own matcher: EvaluateParallel runs
	// Prepare, and the concurrency contract is one Prepare, many Matches.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := EvaluateParallel(w, NewUEMAMatcher(2, 1), nil, 3)
			if err != nil {
				t.Error(err)
				return
			}
			if !reflect.DeepEqual(got, serial) {
				t.Error("concurrent EvaluateParallel differs from sequential")
			}
		}()
	}
	wg.Wait()
}
