package core

import (
	"testing"

	"uncertts/internal/timeseries"
	"uncertts/internal/ucr"
	"uncertts/internal/uncertain"
)

// TestFilteredMatcherReusesCorpusArtifacts proves that a UMA/UEMA matcher
// whose parameters match the workload corpus' filter configuration aliases
// the corpus-maintained arena rows instead of recomputing them — and that
// the aliased vectors are bit-identical to a from-scratch computation.
func TestFilteredMatcherReusesCorpusArtifacts(t *testing.T) {
	w := testWorkload(t, 0.3, 0)
	snap := w.Snapshot()
	cfg := snap.Config()

	uma := NewUMAMatcher(cfg.W)
	if err := uma.Prepare(w); err != nil {
		t.Fatal(err)
	}
	uema := NewUEMAMatcher(cfg.W, cfg.Lambda)
	if err := uema.Prepare(w); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < w.Len(); i++ {
		ent := snap.Entry(i)
		if &uma.filtered[i][0] != &ent.UMA[0] {
			t.Fatalf("series %d: UMA matcher did not alias the corpus arena row", i)
		}
		if &uema.filtered[i][0] != &ent.UEMA[0] {
			t.Fatalf("series %d: UEMA matcher did not alias the corpus arena row", i)
		}
		want, err := timeseries.UncertainMovingAverage(w.PDF[i].Observations, w.Sigmas, cfg.W, cfg.Mode)
		if err != nil {
			t.Fatal(err)
		}
		for j, v := range want {
			if uma.filtered[i][j] != v {
				t.Fatalf("series %d[%d]: aliased UMA %v != recomputed %v", i, j, uma.filtered[i][j], v)
			}
		}
	}

	// A parameter mismatch must fall back to recomputing, not alias stale
	// artifacts.
	other := NewUMAMatcher(cfg.W + 1)
	if err := other.Prepare(w); err != nil {
		t.Fatal(err)
	}
	if &other.filtered[0][0] == &snap.Entry(0).UMA[0] {
		t.Fatal("w-mismatched matcher aliased the corpus UMA row")
	}
}

// TestFilteredMatcherPrepareAllocs is the allocation-counting guard for the
// arena reuse: preparing a matching UMA/UEMA matcher must cost a small
// constant number of allocations, independent of the number of series —
// the pre-arena implementation allocated one vector per series.
func TestFilteredMatcherPrepareAllocs(t *testing.T) {
	w := testWorkload(t, 0.3, 0)
	cfg := w.Snapshot().Config()
	for _, kind := range []FilterKind{FilterUMA, FilterUEMA} {
		m := &FilteredMatcher{Kind: kind, W: cfg.W, Lambda: cfg.Lambda, Mode: cfg.Mode}
		allocs := testing.AllocsPerRun(10, func() {
			if err := m.Prepare(w); err != nil {
				t.Fatal(err)
			}
		})
		// The constant covers the [][]float64 header, the name string and
		// the distance closure. Anything scaling with w.Len()=30 fails.
		if allocs > 8 {
			t.Errorf("%s: Prepare allocated %.0f times, want a small constant", kind, allocs)
		}
	}
}

// BenchmarkFilteredMatcherPrepare reports allocations per Prepare for every
// filter kind: UMA/UEMA alias the corpus arena (constant allocations),
// MA/EMA pack their computed vectors into one contiguous arena block.
func BenchmarkFilteredMatcherPrepare(b *testing.B) {
	w := benchWorkload(b)
	cfg := w.Snapshot().Config()
	for _, m := range []*FilteredMatcher{
		NewUMAMatcher(cfg.W),
		NewUEMAMatcher(cfg.W, cfg.Lambda),
		NewMAMatcher(cfg.W),
		NewEMAMatcher(cfg.W, cfg.Lambda),
	} {
		b.Run(m.Kind.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := m.Prepare(w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchWorkload(b *testing.B) *Workload {
	b.Helper()
	ds, err := ucr.Generate("CBF", ucr.Options{MaxSeries: 60, Length: 128, Seed: 17})
	if err != nil {
		b.Fatal(err)
	}
	p, err := uncertain.NewConstantPerturber(uncertain.Normal, 0.3, 128, 23)
	if err != nil {
		b.Fatal(err)
	}
	w, err := NewWorkload(ds, p, WorkloadConfig{K: 5})
	if err != nil {
		b.Fatal(err)
	}
	return w
}
