package core

import (
	"errors"
	"fmt"

	"uncertts/internal/arena"
	"uncertts/internal/distance"
	"uncertts/internal/dust"
	"uncertts/internal/query"
	"uncertts/internal/timeseries"
)

// Matcher is a similarity technique reduced to the common task: given a
// prepared workload, answer the range query for a query index and return
// the matching series IDs.
type Matcher interface {
	// Name identifies the technique in reports.
	Name() string
	// Prepare binds the matcher to a workload, precomputing any derived
	// representation (filtered series, lookup tables, thresholds).
	Prepare(w *Workload) error
	// Match answers the similarity query for query index qi.
	Match(qi int) ([]int, error)
}

// ErrNotPrepared is returned when Match is called before Prepare.
var ErrNotPrepared = errors.New("core: matcher not prepared")

// distanceMatcher is the shared skeleton of all distance-based techniques
// (Euclidean, DUST, UMA, UEMA, MA, EMA): a per-pair distance plus the
// per-query threshold calibrated through the ground-truth K-th neighbour.
type distanceMatcher struct {
	w    *Workload
	name string
	dist func(qi, ci int) (float64, error)
}

func (m *distanceMatcher) Name() string { return m.name }

// Distance returns the technique's distance between two series of the
// prepared workload. It powers the top-k and classification tasks, which
// need raw distances rather than range answers.
func (m *distanceMatcher) Distance(qi, ci int) (float64, error) {
	if m.w == nil {
		return 0, ErrNotPrepared
	}
	return m.dist(qi, ci)
}

// DistanceMatcher is a Matcher that also exposes its pairwise distance
// (every distance-based technique: Euclidean, DUST, MA/EMA/UMA/UEMA).
type DistanceMatcher interface {
	Matcher
	Distance(qi, ci int) (float64, error)
}

func (m *distanceMatcher) Match(qi int) ([]int, error) {
	if m.w == nil {
		return nil, ErrNotPrepared
	}
	cal := m.w.CalibrationNeighbor(qi)
	if cal < 0 {
		return nil, fmt.Errorf("core: %s: no calibration neighbour for query %d", m.name, qi)
	}
	eps, err := m.dist(qi, cal)
	if err != nil {
		return nil, fmt.Errorf("core: %s: threshold calibration: %w", m.name, err)
	}
	return query.RangeQueryFunc(m.w.Len(), qi, func(ci int) (float64, error) {
		return m.dist(qi, ci)
	}, eps)
}

// EuclideanMatcher is the baseline of Section 4.1.2: plain Euclidean
// distance over the single perturbed observation per timestamp, ignoring
// all uncertainty information.
type EuclideanMatcher struct {
	distanceMatcher
}

// NewEuclideanMatcher returns the baseline matcher.
func NewEuclideanMatcher() *EuclideanMatcher { return &EuclideanMatcher{} }

// Prepare binds the workload.
func (m *EuclideanMatcher) Prepare(w *Workload) error {
	m.w = w
	m.name = "Euclidean"
	m.dist = func(qi, ci int) (float64, error) {
		return distance.Euclidean(w.PDF[qi].Observations, w.PDF[ci].Observations)
	}
	return nil
}

// DUSTMatcher runs the DUST distance with the workload's reported error
// distributions. Its threshold is calibrated in DUST space, mirroring the
// paper's eps_dust procedure.
type DUSTMatcher struct {
	distanceMatcher
	// Opts configures the underlying evaluator (zero value = defaults).
	Opts dust.Options
	d    *dust.Dust
}

// NewDUSTMatcher returns a DUST matcher with default evaluator options.
func NewDUSTMatcher() *DUSTMatcher { return &DUSTMatcher{} }

// Prepare builds the evaluator and binds the workload.
func (m *DUSTMatcher) Prepare(w *Workload) error {
	m.w = w
	m.name = "DUST"
	m.d = dust.New(m.Opts)
	m.dist = func(qi, ci int) (float64, error) {
		return m.d.Distance(w.PDF[qi], w.PDF[ci])
	}
	return nil
}

// FilterKind selects the moving-average variant of a FilteredMatcher.
type FilterKind int

const (
	// FilterMA is the plain moving average (Eq. 15) — no uncertainty
	// information; the unweighted ablation baseline.
	FilterMA FilterKind = iota
	// FilterEMA is the exponential moving average (Eq. 16).
	FilterEMA
	// FilterUMA is the Uncertain Moving Average (Eq. 17).
	FilterUMA
	// FilterUEMA is the Uncertain Exponential Moving Average (Eq. 18).
	FilterUEMA
)

func (k FilterKind) String() string {
	switch k {
	case FilterMA:
		return "MA"
	case FilterEMA:
		return "EMA"
	case FilterUMA:
		return "UMA"
	case FilterUEMA:
		return "UEMA"
	default:
		return fmt.Sprintf("FilterKind(%d)", int(k))
	}
}

// FilteredMatcher implements the paper's Section 5 measures: filter every
// observation sequence, then use plain Euclidean distance on the filtered
// series ("Euclidean, UMA, and UEMA share the same distance function, but
// the input sequence is different").
type FilteredMatcher struct {
	distanceMatcher
	// Kind selects MA / EMA / UMA / UEMA.
	Kind FilterKind
	// W is the window half-width w (window width 2w+1). The paper settles
	// on w=2 (W=5).
	W int
	// Lambda is the exponential decay factor for EMA/UEMA (the paper
	// settles on 1).
	Lambda float64
	// Mode selects the Eq. 17/18 weight reading (see timeseries package).
	Mode timeseries.WeightMode

	filtered [][]float64
}

// NewUMAMatcher returns the UMA measure with the paper's defaults (w=2,
// normalized weights).
func NewUMAMatcher(w int) *FilteredMatcher {
	return &FilteredMatcher{Kind: FilterUMA, W: w}
}

// NewUEMAMatcher returns the UEMA measure (w, lambda per the paper: 2, 1).
func NewUEMAMatcher(w int, lambda float64) *FilteredMatcher {
	return &FilteredMatcher{Kind: FilterUEMA, W: w, Lambda: lambda}
}

// NewMAMatcher returns the unweighted moving-average ablation.
func NewMAMatcher(w int) *FilteredMatcher {
	return &FilteredMatcher{Kind: FilterMA, W: w}
}

// NewEMAMatcher returns the unweighted exponential-moving-average ablation.
func NewEMAMatcher(w int, lambda float64) *FilteredMatcher {
	return &FilteredMatcher{Kind: FilterEMA, W: w, Lambda: lambda}
}

// Name identifies the configured variant.
func (m *FilteredMatcher) Name() string {
	switch m.Kind {
	case FilterEMA, FilterUEMA:
		return fmt.Sprintf("%s(w=%d,lambda=%g)", m.Kind, m.W, m.Lambda)
	default:
		return fmt.Sprintf("%s(w=%d)", m.Kind, m.W)
	}
}

// Prepare filters every series in the workload once. Two layers of the
// columnar refactor show up here: when the matcher's parameters are exactly
// the ones the workload's corpus filters with, the corpus-maintained
// UMA/UEMA arena rows are aliased directly — no per-series computation or
// allocation at all — and any vector that does need computing is packed
// into one contiguous arena instead of one heap allocation per series.
func (m *FilteredMatcher) Prepare(w *Workload) error {
	m.w = w
	m.name = m.Name()
	m.filtered = make([][]float64, w.Len())
	snap := w.Snapshot()
	reuse := snap != nil && snap.Len() == w.Len() &&
		(m.Kind == FilterUMA || m.Kind == FilterUEMA)
	if reuse {
		cfg := snap.Config()
		reuse = m.W == cfg.W && m.Mode == cfg.Mode &&
			//lint:allow floatcmp artifact reuse requires the bit-identical filter config; a near-miss must recompute
			(m.Kind == FilterUMA || m.Lambda == cfg.Lambda)
	}
	var ar *arena.Builder
	for i, ps := range w.PDF {
		if reuse {
			// The corpus filtered each entry with its own per-entry sigmas;
			// aliasing its row is bit-identical to recomputing exactly when
			// those equal the sigmas this matcher would use.
			ent := snap.Entry(i)
			if equalFloats(ent.Sigmas, w.Sigmas) {
				if m.Kind == FilterUMA {
					m.filtered[i] = ent.UMA
				} else {
					m.filtered[i] = ent.UEMA
				}
				continue
			}
		}
		if ar == nil || ar.Stride() != len(ps.Observations) {
			ar = arena.NewBuilder(len(ps.Observations), w.Len()-i)
		}
		dst := ar.AppendZero()
		if err := m.filterInto(dst, ps.Observations, w.Sigmas); err != nil {
			return fmt.Errorf("core: %s: filtering series %d: %w", m.name, ps.ID, err)
		}
		m.filtered[i] = dst
	}
	m.dist = func(qi, ci int) (float64, error) {
		return distance.Euclidean(m.filtered[qi], m.filtered[ci])
	}
	return nil
}

func (m *FilteredMatcher) filterInto(dst, obs, sigmas []float64) error {
	switch m.Kind {
	case FilterMA:
		timeseries.MovingAverageInto(dst, obs, m.W)
		return nil
	case FilterEMA:
		timeseries.ExponentialMovingAverageInto(dst, obs, m.W, m.Lambda)
		return nil
	case FilterUMA:
		return timeseries.UncertainMovingAverageInto(dst, obs, sigmas, m.W, m.Mode)
	case FilterUEMA:
		return timeseries.UncertainExponentialMovingAverageInto(dst, obs, sigmas, m.W, m.Lambda, m.Mode)
	default:
		return fmt.Errorf("core: unknown filter kind %d", int(m.Kind))
	}
}

// equalFloats reports exact elementwise equality — the condition under
// which aliasing a corpus artifact is bit-identical to recomputing it.
func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		//lint:allow floatcmp exact bit-equality is the aliasing contract: reuse is only sound when recomputing changes nothing
		if v != b[i] {
			return false
		}
	}
	return true
}
