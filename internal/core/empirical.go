package core

import (
	"errors"
	"fmt"

	"uncertts/internal/dust"
	"uncertts/internal/stats"
	"uncertts/internal/uncertain"
)

// DUSTEmpiricalMatcher runs DUST with an error distribution *estimated from
// the data* instead of supplied a priori: the repeated observations of the
// sample model (the MUNICH input) yield per-timestamp residuals around the
// sample means, which are pooled across the workload and fitted with a
// kernel density estimate.
//
// This bridges the paper's two uncertainty models and removes DUST's
// biggest practical obstacle — its appetite for exact error knowledge
// (Section 3.1: DUST "uses the largest amount of information among the
// three techniques"). The workload must be built with SamplesPerTS > 1.
type DUSTEmpiricalMatcher struct {
	distanceMatcher
	// Opts configures the dust evaluator.
	Opts dust.Options
	// MaxResiduals caps the pooled-residual count fed to the KDE
	// (default 4096; KDE evaluation is linear in the sample count).
	MaxResiduals int

	d         *dust.Dust
	estimated *stats.Empirical
}

// NewDUSTEmpiricalMatcher returns the estimated-error DUST matcher.
func NewDUSTEmpiricalMatcher() *DUSTEmpiricalMatcher { return &DUSTEmpiricalMatcher{} }

// EstimatedError exposes the fitted error distribution (nil before
// Prepare); tests and diagnostics compare it against the true one.
func (m *DUSTEmpiricalMatcher) EstimatedError() *stats.Empirical { return m.estimated }

// Prepare pools residuals, fits the KDE, and rewrites the workload's error
// metadata view used by this matcher.
func (m *DUSTEmpiricalMatcher) Prepare(w *Workload) error {
	if w.Samples == nil {
		return errors.New("core: DUST-empirical requires a workload with SamplesPerTS > 0")
	}
	if w.Samples[0].SamplesPerTimestamp() < 2 {
		return errors.New("core: DUST-empirical requires at least 2 samples per timestamp")
	}
	cap := m.MaxResiduals
	if cap <= 0 {
		cap = 4096
	}
	residuals := make([]float64, 0, cap)
pool:
	for _, ss := range w.Samples {
		means := ss.Means()
		for i, row := range ss.Samples {
			for _, v := range row {
				residuals = append(residuals, v-means[i])
				if len(residuals) >= cap {
					break pool
				}
			}
		}
	}
	est, err := stats.NewEmpirical(residuals, 0)
	if err != nil {
		return fmt.Errorf("core: DUST-empirical: fitting residuals: %w", err)
	}
	m.estimated = est

	// DUST evaluates its phi correlation millions of times; a raw KDE with
	// thousands of kernels would force numerical integration with an
	// O(residuals) integrand. Re-expressing the estimate as a small
	// Gaussian mixture (an evenly strided subsample of the kernels) keeps
	// the density while unlocking the exact closed-form correlation.
	const components = 64
	stride := len(residuals) / components
	if stride < 1 {
		stride = 1
	}
	var comps []stats.Dist
	var weights []float64
	h := est.Bandwidth()
	for i := 0; i < len(residuals); i += stride {
		comps = append(comps, stats.NewNormal(residuals[i], h))
		weights = append(weights, 1)
	}
	errDist := stats.Dist(stats.NewMixture(comps, weights))

	// Build the estimated-error view of the PDF series: observations are
	// the per-timestamp sample means, the error everywhere is the mixture.
	view := make([]uncertain.PDFSeries, len(w.Samples))
	for i, ss := range w.Samples {
		obs := ss.Means()
		errsArr := make([]stats.Dist, len(obs))
		for j := range errsArr {
			errsArr[j] = errDist
		}
		view[i] = uncertain.PDFSeries{Observations: obs, Errors: errsArr, Label: ss.Label, ID: ss.ID}
	}

	m.w = w
	m.name = "DUST-empirical"
	m.d = dust.New(m.Opts)
	m.dist = func(qi, ci int) (float64, error) {
		return m.d.Distance(view[qi], view[ci])
	}
	return nil
}
