package core

import (
	"errors"
	"fmt"
	"sync"

	"uncertts/internal/munich"
	"uncertts/internal/proud"
	"uncertts/internal/query"
)

// PROUDMatcher answers the probabilistic range query of Equations 8-11
// using the Euclidean threshold calibrated on the ground truth and the
// workload's single reported sigma.
type PROUDMatcher struct {
	// Tau is the probability threshold. The paper uses "the optimal
	// probabilistic threshold tau determined after repeated experiments";
	// CalibrateTau reproduces that procedure.
	Tau float64
	// UseSynopsis switches to the Haar-synopsis variant with Coeffs
	// retained coefficients.
	UseSynopsis bool
	Coeffs      int

	w *Workload
}

// NewPROUDMatcher returns a PROUD matcher with the given tau.
func NewPROUDMatcher(tau float64) *PROUDMatcher { return &PROUDMatcher{Tau: tau} }

// Name identifies the technique.
func (m *PROUDMatcher) Name() string {
	if m.UseSynopsis {
		return fmt.Sprintf("PROUD-wavelet(tau=%g,k=%d)", m.Tau, m.Coeffs)
	}
	return fmt.Sprintf("PROUD(tau=%g)", m.Tau)
}

// Prepare binds the workload.
func (m *PROUDMatcher) Prepare(w *Workload) error {
	if m.Tau <= 0 || m.Tau >= 1 {
		return fmt.Errorf("core: PROUD tau %v outside (0, 1)", m.Tau)
	}
	m.w = w
	return nil
}

// Match answers the probabilistic range query for query index qi.
func (m *PROUDMatcher) Match(qi int) ([]int, error) {
	if m.w == nil {
		return nil, ErrNotPrepared
	}
	eps := m.w.EpsEucl(qi)
	base := proud.Matcher{
		Eps:        eps,
		Tau:        m.Tau,
		QuerySigma: m.w.ReportedSigma,
		CandSigma:  m.w.ReportedSigma,
	}
	q := m.w.PDF[qi].Observations
	match := func(c []float64) (bool, error) { return base.Matches(q, c) }
	if m.UseSynopsis {
		syn := proud.SynopsisMatcher{Matcher: base, Coeffs: m.Coeffs}
		match = func(c []float64) (bool, error) { return syn.Matches(q, c) }
	}
	var out []int
	for ci := range m.w.PDF {
		if ci == qi {
			continue
		}
		ok, err := match(m.w.PDF[ci].Observations)
		if err != nil {
			return nil, fmt.Errorf("core: PROUD candidate %d: %w", ci, err)
		}
		if ok {
			out = append(out, ci)
		}
	}
	return out, nil
}

// MunichProbCache memoises MUNICH pair probabilities within one workload.
// The probability Pr(distance(q, c) <= eps(q)) does not depend on tau, so a
// tau calibration sweep can share one cache across matcher instances and
// pay the expensive distance counting once per (query, candidate) pair.
// A cache must never be shared across different workloads.
type MunichProbCache struct {
	mu sync.Mutex
	m  map[[2]int]float64
}

// NewMunichProbCache returns an empty cache.
func NewMunichProbCache() *MunichProbCache {
	return &MunichProbCache{m: make(map[[2]int]float64)}
}

func (c *MunichProbCache) get(qi, ci int) (float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.m[[2]int{qi, ci}]
	return p, ok
}

func (c *MunichProbCache) put(qi, ci int, p float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[[2]int{qi, ci}] = p
}

// Len reports the number of cached pairs.
func (c *MunichProbCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// MUNICHMatcher answers the probabilistic range query by counting feasible
// distances over the repeated-observation model. The workload must have
// been built with SamplesPerTS > 0.
type MUNICHMatcher struct {
	// Tau is the probability threshold (calibrated like PROUD's).
	Tau float64
	// Opts tunes the probability estimator.
	Opts munich.Options
	// Cache optionally shares pair probabilities across matcher instances
	// bound to the same workload (tau calibration sweeps).
	Cache *MunichProbCache

	w *Workload
}

// NewMUNICHMatcher returns a MUNICH matcher with the given tau.
func NewMUNICHMatcher(tau float64) *MUNICHMatcher { return &MUNICHMatcher{Tau: tau} }

// Name identifies the technique.
func (m *MUNICHMatcher) Name() string { return fmt.Sprintf("MUNICH(tau=%g)", m.Tau) }

// Prepare binds the workload and checks the sample model exists.
func (m *MUNICHMatcher) Prepare(w *Workload) error {
	if m.Tau <= 0 || m.Tau > 1 {
		return fmt.Errorf("core: MUNICH tau %v outside (0, 1]", m.Tau)
	}
	if w.Samples == nil {
		return errors.New("core: MUNICH requires a workload with SamplesPerTS > 0")
	}
	m.w = w
	return nil
}

// Match answers the probabilistic range query for query index qi.
func (m *MUNICHMatcher) Match(qi int) ([]int, error) {
	if m.w == nil {
		return nil, ErrNotPrepared
	}
	eps := m.w.EpsEucl(qi)
	var out []int
	for ci := range m.w.Samples {
		if ci == qi {
			continue
		}
		p, err := m.pairProbability(qi, ci, eps)
		if err != nil {
			return nil, fmt.Errorf("core: MUNICH candidate %d: %w", ci, err)
		}
		if p >= m.Tau {
			out = append(out, ci)
		}
	}
	return out, nil
}

// pairProbability returns Pr(distance(q, c) <= eps), consulting the shared
// cache and the bounding-interval pruning before any counting.
func (m *MUNICHMatcher) pairProbability(qi, ci int, eps float64) (float64, error) {
	if m.Cache != nil {
		if p, ok := m.Cache.get(qi, ci); ok {
			return p, nil
		}
	}
	var p float64
	dec, err := munich.Prune(m.w.Samples[qi], m.w.Samples[ci], eps)
	if err != nil {
		return 0, err
	}
	switch dec {
	case munich.PruneAccept:
		p = 1
	case munich.PruneReject:
		p = 0
	default:
		p, err = munich.Probability(m.w.Samples[qi], m.w.Samples[ci], eps, m.Opts)
		if err != nil {
			return 0, err
		}
	}
	if m.Cache != nil {
		m.Cache.put(qi, ci, p)
	}
	return p, nil
}

// EvaluateQuery runs one matcher on one query and scores it against the
// ground truth.
func EvaluateQuery(w *Workload, m Matcher, qi int) (query.Metrics, error) {
	got, err := m.Match(qi)
	if err != nil {
		return query.Metrics{}, err
	}
	return query.Evaluate(got, w.Truth(qi)), nil
}

// Evaluate runs the matcher over the given query indexes (nil = every
// series as a query, the paper's protocol) and returns per-query metrics.
func Evaluate(w *Workload, m Matcher, queries []int) ([]query.Metrics, error) {
	if err := m.Prepare(w); err != nil {
		return nil, fmt.Errorf("core: preparing %s: %w", m.Name(), err)
	}
	if queries == nil {
		queries = make([]int, w.Len())
		for i := range queries {
			queries[i] = i
		}
	}
	out := make([]query.Metrics, 0, len(queries))
	for _, qi := range queries {
		if qi < 0 || qi >= w.Len() {
			return nil, fmt.Errorf("core: query index %d outside [0, %d)", qi, w.Len())
		}
		met, err := EvaluateQuery(w, m, qi)
		if err != nil {
			return nil, fmt.Errorf("core: %s on query %d: %w", m.Name(), qi, err)
		}
		out = append(out, met)
	}
	return out, nil
}

// DefaultTauGrid is the tau grid CalibrateTau sweeps by default. It reaches
// far into the small-tau regime because PROUD's distance statistic
// double-counts realized noise (the observed distance already contains the
// perturbation that E[dist^2] adds again), so its optimal tau sits well
// below 0.5 at moderate noise.
var DefaultTauGrid = []float64{1e-4, 1e-3, 0.01, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 0.95}

// CalibrateTau reproduces the paper's "optimal probabilistic threshold tau
// determined after repeated experiments": it evaluates the matcher factory
// over a tau grid and returns the tau with the best mean F1, along with
// that F1.
func CalibrateTau(w *Workload, factory func(tau float64) Matcher, queries []int, grid []float64) (bestTau, bestF1 float64, err error) {
	if grid == nil {
		grid = DefaultTauGrid
	}
	bestF1 = -1
	for _, tau := range grid {
		ms, err := Evaluate(w, factory(tau), queries)
		if err != nil {
			return 0, 0, fmt.Errorf("core: calibrating tau=%v: %w", tau, err)
		}
		f1 := query.AverageMetrics(ms).F1
		if f1 > bestF1 {
			bestF1 = f1
			bestTau = tau
		}
	}
	return bestTau, bestF1, nil
}
