// Package telemetry is the observability kernel of the serving tier: a
// stdlib-only metrics registry exposed in Prometheus text exposition
// format, per-query traces with lifecycle spans, a structured slow-query
// log, and the uptime/build identity served by /healthz.
//
// The registry holds counters, gauges and fixed-bucket histograms, plain
// and labelled. Updates are atomic and allocation-free — Inc/Add/Set/
// Observe never allocate — so instrumentation is safe on the query hot
// path; the one allocating operation, resolving a labelled child with
// With, is meant to run once per query (or be hoisted into a variable),
// never per series. Metric names are validated at registration: snake_case
// with a unit suffix (_total, _seconds, _bytes, _ratio), the invariant the
// metricname analyzer enforces statically.
//
// Exposition is deterministic: families appear in registration order,
// children sorted by label values, so scrapes diff cleanly in tests.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// nameRE is the registration-time contract on metric names: snake_case
// starting with a letter, ending in a unit suffix. The metricname lint
// analyzer enforces the same pattern statically on every literal passed to
// the New* constructors.
var nameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*(_total|_seconds|_bytes|_ratio)$`)

// labelRE constrains label names (values are free-form).
var labelRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// ValidMetricName reports whether name satisfies the registry's naming
// contract. Exported so the metricname analyzer checks literals against
// the exact runtime rule.
func ValidMetricName(name string) bool { return nameRE.MatchString(name) }

// DurationBuckets returns the default histogram bounds for latencies in
// seconds: 100µs to 10s, roughly geometric.
func DurationBuckets() []float64 {
	return []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
		0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
}

// metric is one registered family: it renders its full exposition block
// (# HELP, # TYPE, samples).
type metric interface {
	expose(w io.Writer) error
}

// Registry is an ordered set of metric families with unique names.
type Registry struct {
	mu      sync.Mutex
	names   map[string]bool
	metrics []metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

var defaultRegistry = NewRegistry()

// DefaultRegistry is the process-wide registry every package-level metric
// registers on; /metrics serves it.
func DefaultRegistry() *Registry { return defaultRegistry }

// register validates the name and adds the family. Registration happens in
// package var blocks, so violations are programmer errors and panic.
func (r *Registry) register(name string, labels []string, m metric) {
	if !ValidMetricName(name) {
		panic(fmt.Sprintf("telemetry: metric name %q is not snake_case with a unit suffix (_total, _seconds, _bytes, _ratio)", name))
	}
	for _, l := range labels {
		if !labelRE.MatchString(l) {
			panic(fmt.Sprintf("telemetry: label name %q of metric %q is not snake_case", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[name] {
		panic(fmt.Sprintf("telemetry: metric %q registered twice", name))
	}
	r.names[name] = true
	r.metrics = append(r.metrics, m)
}

// Expose writes the registry in Prometheus text exposition format.
func (r *Registry) Expose(w io.Writer) error {
	r.mu.Lock()
	ms := make([]metric, len(r.metrics))
	copy(ms, r.metrics)
	r.mu.Unlock()
	for _, m := range ms {
		if err := m.expose(w); err != nil {
			return err
		}
	}
	return nil
}

// Handler serves the registry at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.Expose(w)
	})
}

// Handler serves the default registry.
func Handler() http.Handler { return defaultRegistry.Handler() }

// formatValue renders a sample value the way Prometheus does.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// escapeLabel escapes a label value for the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// labelPairs renders {a="x",b="y"}; extra (used for histogram le) appends
// one more pair. Empty sets render as the empty string.
func labelPairs(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s=%q`, n, escapeLabel(values[i]))
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, extraName, extraValue)
	}
	b.WriteByte('}')
	return b.String()
}

func writeHeader(w io.Writer, name, help, typ string) error {
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	return err
}

// atomicFloat is a float64 updated with CAS on its bit pattern.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Store(v float64) { f.bits.Store(math.Float64bits(v)) }

func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }

func (f *atomicFloat) Add(delta float64) {
	for {
		old := f.bits.Load()
		cur := math.Float64frombits(old)
		if f.bits.CompareAndSwap(old, math.Float64bits(cur+delta)) {
			return
		}
	}
}

// Counter is a monotonically increasing integer counter.
type Counter struct {
	name, help string
	v          atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (which must be non-negative; counters never go down).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("telemetry: counter decremented")
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) expose(w io.Writer) error {
	if err := writeHeader(w, c.name, c.help, "counter"); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", c.name, c.Value())
	return err
}

// NewCounter registers a counter on the registry.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	r.register(name, nil, c)
	return c
}

// Gauge is a float value that can go up and down.
type Gauge struct {
	name, help string
	v          atomicFloat
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.v.Store(v) }

// Add adds delta (which may be negative).
func (g *Gauge) Add(delta float64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.Load() }

func (g *Gauge) expose(w io.Writer) error {
	if err := writeHeader(w, g.name, g.help, "gauge"); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %s\n", g.name, formatValue(g.Value()))
	return err
}

// NewGauge registers a gauge on the registry.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{name: name, help: help}
	r.register(name, nil, g)
	return g
}

// GaugeFunc is a gauge whose value is computed at scrape time.
type GaugeFunc struct {
	name, help string
	fn         func() float64
}

func (g *GaugeFunc) expose(w io.Writer) error {
	if err := writeHeader(w, g.name, g.help, "gauge"); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %s\n", g.name, formatValue(g.fn()))
	return err
}

// NewGaugeFunc registers a scrape-time gauge on the registry.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) *GaugeFunc {
	g := &GaugeFunc{name: name, help: help, fn: fn}
	r.register(name, nil, g)
	return g
}

// Histogram observes a distribution over fixed bucket bounds (upper
// bounds, ascending; an implicit +Inf bucket closes the set). Observe is
// atomic and allocation-free.
type Histogram struct {
	name, help string
	bounds     []float64
	counts     []atomic.Int64 // len(bounds)+1; last is +Inf
	sum        atomicFloat
}

func newHistogram(name, help string, bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic(fmt.Sprintf("telemetry: histogram %q bucket bounds not ascending", name))
		}
	}
	return &Histogram{
		name:   name,
		help:   help,
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.Load() }

// writeSamples renders the _bucket/_sum/_count triplet under the given
// label set (empty for a plain histogram).
func (h *Histogram) writeSamples(w io.Writer, labelNames, labelValues []string) error {
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		pairs := labelPairs(labelNames, labelValues, "le", formatValue(b))
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", h.name, pairs, cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	pairs := labelPairs(labelNames, labelValues, "le", "+Inf")
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", h.name, pairs, cum); err != nil {
		return err
	}
	base := labelPairs(labelNames, labelValues, "", "")
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", h.name, base, formatValue(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", h.name, base, cum)
	return err
}

func (h *Histogram) expose(w io.Writer) error {
	if err := writeHeader(w, h.name, h.help, "histogram"); err != nil {
		return err
	}
	return h.writeSamples(w, nil, nil)
}

// NewHistogram registers a histogram on the registry. A nil bounds slice
// uses DurationBuckets.
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DurationBuckets()
	}
	h := newHistogram(name, help, bounds)
	r.register(name, nil, h)
	return h
}

// vec is the shared child management of the labelled families: children
// are keyed by their joined label values and created on first use.
type vec struct {
	name       string
	labelNames []string
	mu         sync.Mutex
	values     map[string][]string
}

func (v *vec) key(values []string) string {
	if len(values) != len(v.labelNames) {
		panic(fmt.Sprintf("telemetry: metric %q wants %d label values, got %d", v.name, len(v.labelNames), len(values)))
	}
	return strings.Join(values, "\x00")
}

// sortedKeys returns the child keys sorted for deterministic exposition.
// Callers hold v.mu.
func (v *vec) sortedKeys() []string {
	keys := make([]string, 0, len(v.values))
	for k := range v.values {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// CounterVec is a counter family partitioned by labels.
type CounterVec struct {
	vec
	help     string
	children map[string]*Counter
}

// NewCounterVec registers a labelled counter family on the registry.
func (r *Registry) NewCounterVec(name, help string, labelNames ...string) *CounterVec {
	cv := &CounterVec{
		vec:      vec{name: name, labelNames: labelNames, values: make(map[string][]string)},
		help:     help,
		children: make(map[string]*Counter),
	}
	r.register(name, labelNames, cv)
	return cv
}

// With returns the child counter for the label values, creating it on
// first use. Hoist the result out of loops: With locks and may allocate.
func (cv *CounterVec) With(values ...string) *Counter {
	key := cv.key(values)
	cv.mu.Lock()
	defer cv.mu.Unlock()
	c := cv.children[key]
	if c == nil {
		c = &Counter{name: cv.name}
		cv.children[key] = c
		cv.values[key] = append([]string(nil), values...)
	}
	return c
}

func (cv *CounterVec) expose(w io.Writer) error {
	if err := writeHeader(w, cv.name, cv.help, "counter"); err != nil {
		return err
	}
	cv.mu.Lock()
	defer cv.mu.Unlock()
	for _, k := range cv.sortedKeys() {
		pairs := labelPairs(cv.labelNames, cv.values[k], "", "")
		if _, err := fmt.Fprintf(w, "%s%s %d\n", cv.name, pairs, cv.children[k].Value()); err != nil {
			return err
		}
	}
	return nil
}

// GaugeVec is a gauge family partitioned by labels.
type GaugeVec struct {
	vec
	help     string
	children map[string]*Gauge
}

// NewGaugeVec registers a labelled gauge family on the registry.
func (r *Registry) NewGaugeVec(name, help string, labelNames ...string) *GaugeVec {
	gv := &GaugeVec{
		vec:      vec{name: name, labelNames: labelNames, values: make(map[string][]string)},
		help:     help,
		children: make(map[string]*Gauge),
	}
	r.register(name, labelNames, gv)
	return gv
}

// With returns the child gauge for the label values.
func (gv *GaugeVec) With(values ...string) *Gauge {
	key := gv.key(values)
	gv.mu.Lock()
	defer gv.mu.Unlock()
	g := gv.children[key]
	if g == nil {
		g = &Gauge{name: gv.name}
		gv.children[key] = g
		gv.values[key] = append([]string(nil), values...)
	}
	return g
}

func (gv *GaugeVec) expose(w io.Writer) error {
	if err := writeHeader(w, gv.name, gv.help, "gauge"); err != nil {
		return err
	}
	gv.mu.Lock()
	defer gv.mu.Unlock()
	for _, k := range gv.sortedKeys() {
		pairs := labelPairs(gv.labelNames, gv.values[k], "", "")
		if _, err := fmt.Fprintf(w, "%s%s %s\n", gv.name, pairs, formatValue(gv.children[k].Value())); err != nil {
			return err
		}
	}
	return nil
}

// HistogramVec is a histogram family partitioned by labels; every child
// shares the bucket bounds.
type HistogramVec struct {
	vec
	help     string
	bounds   []float64
	children map[string]*Histogram
}

// NewHistogramVec registers a labelled histogram family on the registry.
// A nil bounds slice uses DurationBuckets.
func (r *Registry) NewHistogramVec(name, help string, bounds []float64, labelNames ...string) *HistogramVec {
	if bounds == nil {
		bounds = DurationBuckets()
	}
	hv := &HistogramVec{
		vec:      vec{name: name, labelNames: labelNames, values: make(map[string][]string)},
		help:     help,
		bounds:   bounds,
		children: make(map[string]*Histogram),
	}
	r.register(name, labelNames, hv)
	return hv
}

// With returns the child histogram for the label values.
func (hv *HistogramVec) With(values ...string) *Histogram {
	key := hv.key(values)
	hv.mu.Lock()
	defer hv.mu.Unlock()
	h := hv.children[key]
	if h == nil {
		h = newHistogram(hv.name, hv.help, hv.bounds)
		hv.children[key] = h
		hv.values[key] = append([]string(nil), values...)
	}
	return h
}

func (hv *HistogramVec) expose(w io.Writer) error {
	if err := writeHeader(w, hv.name, hv.help, "histogram"); err != nil {
		return err
	}
	hv.mu.Lock()
	defer hv.mu.Unlock()
	for _, k := range hv.sortedKeys() {
		if err := hv.children[k].writeSamples(w, hv.labelNames, hv.values[k]); err != nil {
			return err
		}
	}
	return nil
}

// The default-registry constructors: what almost every call site uses, and
// what the metricname analyzer watches.

// NewCounter registers a counter on the default registry.
func NewCounter(name, help string) *Counter { return defaultRegistry.NewCounter(name, help) }

// NewCounterVec registers a labelled counter family on the default registry.
func NewCounterVec(name, help string, labelNames ...string) *CounterVec {
	return defaultRegistry.NewCounterVec(name, help, labelNames...)
}

// NewGauge registers a gauge on the default registry.
func NewGauge(name, help string) *Gauge { return defaultRegistry.NewGauge(name, help) }

// NewGaugeVec registers a labelled gauge family on the default registry.
func NewGaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return defaultRegistry.NewGaugeVec(name, help, labelNames...)
}

// NewGaugeFunc registers a scrape-time gauge on the default registry.
func NewGaugeFunc(name, help string, fn func() float64) *GaugeFunc {
	return defaultRegistry.NewGaugeFunc(name, help, fn)
}

// NewHistogram registers a histogram on the default registry.
func NewHistogram(name, help string, bounds []float64) *Histogram {
	return defaultRegistry.NewHistogram(name, help, bounds)
}

// NewHistogramVec registers a labelled histogram family on the default
// registry.
func NewHistogramVec(name, help string, bounds []float64, labelNames ...string) *HistogramVec {
	return defaultRegistry.NewHistogramVec(name, help, bounds, labelNames...)
}
