package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"log/slog"
	"net/http/httptest"
	"testing"
	"time"
)

func TestTraceSpansAndRing(t *testing.T) {
	tc := NewTracer(4, 0, slog.New(slog.NewJSONHandler(bytes.NewBuffer(nil), nil)))
	tr := tc.StartTrace("", "query")
	if tr.ID() == "" {
		t.Fatal("no trace ID minted")
	}
	tr.SetQuery("topk", "dtw")
	sp := tr.Start("parse")
	sp.End()
	sp2 := tr.Start("scatter:s1")
	sp2.EndErr(errors.New("shard down"))
	tr.SetDegraded()
	tc.Finish(tr)

	recent := tc.Recent(0)
	if len(recent) != 1 {
		t.Fatalf("ring holds %d traces, want 1", len(recent))
	}
	rec := recent[0]
	if rec.ID != tr.ID() || rec.Kind != "topk" || rec.Measure != "dtw" || !rec.Degraded {
		t.Fatalf("trace record mismatch: %+v", rec)
	}
	if len(rec.Spans) != 2 || rec.Spans[0].Name != "parse" || rec.Spans[1].Error != "shard down" {
		t.Fatalf("span records mismatch: %+v", rec.Spans)
	}
}

func TestTraceAdoptsCallerID(t *testing.T) {
	tc := NewTracer(4, 0, nil)
	tr := tc.StartTrace("deadbeef00000001", "cluster_query")
	if tr.ID() != "deadbeef00000001" {
		t.Fatalf("trace did not adopt the caller's ID: %s", tr.ID())
	}
}

func TestNilTraceIsSafe(t *testing.T) {
	var tr *Trace
	sp := tr.Start("anything")
	sp.End()
	sp.EndErr(errors.New("x"))
	tr.SetQuery("topk", "dtw")
	tr.Fail(errors.New("x"))
	tr.SetDegraded()
	if tr.ID() != "" {
		t.Fatal("nil trace has an ID")
	}
	ctx := WithTrace(context.Background(), nil)
	if TraceFrom(ctx) != nil {
		t.Fatal("nil trace attached to context")
	}
}

func TestContextRoundTrip(t *testing.T) {
	tc := NewTracer(4, 0, nil)
	tr := tc.StartTrace("", "query")
	ctx := WithTrace(context.Background(), tr)
	if TraceFrom(ctx) != tr {
		t.Fatal("trace did not round-trip through the context")
	}
	if TraceFrom(context.Background()) != nil {
		t.Fatal("background context carries a trace")
	}
}

func TestRingEvictsOldest(t *testing.T) {
	tc := NewTracer(2, 0, nil)
	for i := 0; i < 3; i++ {
		tc.Finish(tc.StartTrace("", "query"))
	}
	recent := tc.Recent(0)
	if len(recent) != 2 {
		t.Fatalf("ring holds %d, want 2", len(recent))
	}
	if one := tc.Recent(1); len(one) != 1 || one[0].ID != recent[0].ID {
		t.Fatalf("Recent(1) = %+v, want newest %s", one, recent[0].ID)
	}
}

func TestSlowQueryLog(t *testing.T) {
	var buf bytes.Buffer
	tc := NewTracer(4, time.Nanosecond, slog.New(slog.NewJSONHandler(&buf, nil)))
	tr := tc.StartTrace("", "query")
	tr.SetQuery("range", "euclidean")
	sp := tr.Start("refine")
	time.Sleep(time.Millisecond)
	sp.End()
	tc.Finish(tr)

	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("slow-query log is not one JSON record: %v\n%s", err, buf.String())
	}
	if rec["msg"] != "slow query" || rec["trace_id"] != tr.ID() || rec["kind"] != "range" {
		t.Fatalf("slow-query record mismatch: %v", rec)
	}
	if rec["spans"] == "" {
		t.Fatal("slow-query record carries no spans")
	}

	// Below the threshold: nothing is logged.
	buf.Reset()
	tc.SetSlowThreshold(time.Hour)
	tc.Finish(tc.StartTrace("", "query"))
	if buf.Len() != 0 {
		t.Fatalf("fast query was logged: %s", buf.String())
	}
}

func TestDebugTraceHandler(t *testing.T) {
	tc := NewTracer(8, 0, nil)
	tr := tc.StartTrace("", "query")
	tr.Start("parse").End()
	tc.Finish(tr)

	req := httptest.NewRequest("GET", "/debug/trace?n=5", nil)
	w := httptest.NewRecorder()
	tc.HandleDebugTrace(w, req)
	if w.Code != 200 {
		t.Fatalf("status %d", w.Code)
	}
	var out []TraceJSON
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].ID != tr.ID() || len(out[0].Spans) != 1 {
		t.Fatalf("debug trace payload mismatch: %+v", out)
	}

	w = httptest.NewRecorder()
	tc.HandleDebugTrace(w, httptest.NewRequest("GET", "/debug/trace?n=bogus", nil))
	if w.Code != 400 {
		t.Fatalf("bogus n answered %d, want 400", w.Code)
	}
	w = httptest.NewRecorder()
	tc.HandleDebugTrace(w, httptest.NewRequest("POST", "/debug/trace", nil))
	if w.Code != 405 {
		t.Fatalf("POST answered %d, want 405", w.Code)
	}
}
