package telemetry

import (
	"runtime/debug"
	"sync"
	"time"
)

// processStart anchors the uptime reported by /healthz and the
// uncertts_uptime_seconds gauge.
var processStart = time.Now()

// uptimeGauge exposes uptime on /metrics; /healthz reports the same value
// as uptime_seconds so deploy age is visible from either surface.
var _ = NewGaugeFunc("uncertts_uptime_seconds", "Seconds since the process started.", func() float64 {
	return Uptime().Seconds()
})

// Uptime returns the time since the process started.
func Uptime() time.Duration { return time.Since(processStart) }

// BuildJSON identifies the running binary: the main module version and
// the VCS revision baked in by the Go toolchain. Fields are empty when
// the binary was built without module/VCS metadata (e.g. go test).
type BuildJSON struct {
	GoVersion string `json:"go_version,omitempty"`
	Version   string `json:"version,omitempty"`
	Revision  string `json:"vcs_revision,omitempty"`
	Modified  bool   `json:"vcs_modified,omitempty"`
}

var (
	buildOnce sync.Once
	buildInfo BuildJSON
)

// Build returns the binary's build identity, read once from
// debug.ReadBuildInfo.
func Build() BuildJSON {
	buildOnce.Do(func() {
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		buildInfo.GoVersion = bi.GoVersion
		if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
			buildInfo.Version = bi.Main.Version
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				buildInfo.Revision = s.Value
			case "vcs.modified":
				buildInfo.Modified = s.Value == "true"
			}
		}
	})
	return buildInfo
}
