package telemetry

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("t_ops_total", "ops")
	g := r.NewGauge("t_depth_ratio", "depth")
	h := r.NewHistogram("t_lat_seconds", "latency", []float64{0.1, 1})

	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g.Set(2.5)
	g.Add(-0.5)
	if got := g.Value(); got != 2.0 {
		t.Fatalf("gauge = %v, want 2", got)
	}
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	if got := h.Count(); got != 3 {
		t.Fatalf("histogram count = %d, want 3", got)
	}
	if got := h.Sum(); got != 5.55 {
		t.Fatalf("histogram sum = %v, want 5.55", got)
	}

	var b strings.Builder
	if err := r.Expose(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE t_ops_total counter",
		"t_ops_total 5",
		"t_depth_ratio 2",
		`t_lat_seconds_bucket{le="0.1"} 1`,
		`t_lat_seconds_bucket{le="1"} 2`,
		`t_lat_seconds_bucket{le="+Inf"} 3`,
		"t_lat_seconds_sum 5.55",
		"t_lat_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition is missing %q:\n%s", want, out)
		}
	}
}

func TestVecChildren(t *testing.T) {
	r := NewRegistry()
	cv := r.NewCounterVec("t_q_total", "queries", "kind", "measure")
	cv.With("topk", "dtw").Inc()
	cv.With("topk", "dtw").Inc()
	cv.With("range", "euclidean").Inc()
	if got := cv.With("topk", "dtw").Value(); got != 2 {
		t.Fatalf("child = %d, want 2", got)
	}

	hv := r.NewHistogramVec("t_q_seconds", "latency", []float64{1}, "shard")
	hv.With("s0").Observe(0.5)
	hv.With("s1").Observe(2)

	var b strings.Builder
	if err := r.Expose(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`t_q_total{kind="range",measure="euclidean"} 1`,
		`t_q_total{kind="topk",measure="dtw"} 2`,
		`t_q_seconds_bucket{shard="s0",le="1"} 1`,
		`t_q_seconds_bucket{shard="s1",le="+Inf"} 1`,
		`t_q_seconds_count{shard="s1"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition is missing %q:\n%s", want, out)
		}
	}
}

func TestNameValidation(t *testing.T) {
	for name, ok := range map[string]bool{
		"uncertts_queries_total":   true,
		"uncertts_wal_bytes":       true,
		"uncertts_lat_seconds":     true,
		"uncertts_pruned_ratio":    true,
		"uncertts_queries":         false, // no unit suffix
		"UncerttsQueriesTotal":     false, // not snake_case
		"_queries_total":           false, // leading underscore
		"uncertts.queries.total":   false,
		"uncertts_queries_count":   false, // _count is a histogram-internal suffix
		"uncertts_queries_total ":  false,
		"9uncertts_queries_total":  false,
		"uncertts_queries_seconds": true,
	} {
		if got := ValidMetricName(name); got != ok {
			t.Errorf("ValidMetricName(%q) = %v, want %v", name, got, ok)
		}
	}

	defer func() {
		if recover() == nil {
			t.Fatal("registering an unsuffixed name did not panic")
		}
	}()
	r := NewRegistry()
	//lint:allow metricname the invalid literal is the test subject
	r.NewCounter("bad_name", "no unit suffix")
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("t_dup_total", "first")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.NewCounter("t_dup_total", "second")
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("t_conc_total", "c")
	h := r.NewHistogram("t_conc_seconds", "h", []float64{1})
	cv := r.NewCounterVec("t_conc_lbl_total", "cv", "w")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			child := cv.With("w") // shared child across goroutines
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(0.5)
				child.Inc()
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 || cv.With("w").Value() != 8000 {
		t.Fatalf("lost updates: counter=%d hist=%d vec=%d", c.Value(), h.Count(), cv.With("w").Value())
	}
}

func TestHandlerRoundTripsThroughParser(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("t_round_total", "count").Inc()
	r.NewGauge("t_round_ratio", "ratio").Set(0.25)
	r.NewHistogramVec("t_round_seconds", "lat", []float64{0.1}, "kind").With("topk").Observe(0.05)

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	fams, err := ParseExposition(resp.Body)
	if err != nil {
		t.Fatalf("scrape does not parse: %v", err)
	}
	for _, name := range []string{"t_round_total", "t_round_ratio", "t_round_seconds"} {
		fam := fams[name]
		if fam == nil {
			t.Fatalf("family %s missing from scrape", name)
		}
		if len(fam.Samples) == 0 {
			t.Fatalf("family %s has no samples", name)
		}
	}
	if fams["t_round_seconds"].Type != "histogram" {
		t.Errorf("t_round_seconds TYPE = %q", fams["t_round_seconds"].Type)
	}
	var le string
	for _, s := range fams["t_round_seconds"].Samples {
		if s.Name == "t_round_seconds_bucket" && s.Labels["kind"] == "topk" && s.Value == 1 {
			le = s.Labels["le"]
			break
		}
	}
	if le != "0.1" {
		t.Errorf("first populated bucket le = %q, want 0.1", le)
	}
}
