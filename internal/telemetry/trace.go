package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"log/slog"
	"net/http"
	"os"
	"strconv"
	"sync"
	"time"
)

// TraceHeader carries a query's trace ID: set on every /query response so
// clients can quote it, and on the coordinator's /cluster/query requests
// so every shard a query touches records its spans under the same ID.
const TraceHeader = "X-Uncertts-Trace-Id"

// Span is one timed step of a query's lifecycle (parse, index descent,
// per-shard scatter, kernel refine, merge). Spans are created by
// Trace.Start and closed by End/EndErr; an unclosed span exposes a zero
// duration rather than corrupting the trace.
type Span struct {
	name  string
	start time.Time

	mu    sync.Mutex
	dur   time.Duration
	ended bool
	err   string
}

// End closes the span.
func (sp *Span) End() { sp.EndErr(nil) }

// EndErr closes the span, recording err (when non-nil) as its failure.
// Nil-safe: spans started from a nil trace are nil and End-ing them is a
// no-op, so instrumentation needs no trace-presence checks.
func (sp *Span) EndErr(err error) {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.ended {
		return
	}
	sp.ended = true
	sp.dur = time.Since(sp.start)
	if err != nil {
		sp.err = err.Error()
	}
}

// SpanJSON is a span's wire form in /debug/trace and the slow-query log.
type SpanJSON struct {
	Name string `json:"name"`
	// OffsetMS is the span's start relative to the trace's start.
	OffsetMS   float64 `json:"offset_ms"`
	DurationMS float64 `json:"duration_ms"`
	Error      string  `json:"error,omitempty"`
}

// Trace accumulates the spans of one query under one ID. Methods are safe
// for concurrent use (scatter legs span from their own goroutines) and
// nil-safe, so code paths without an active trace carry zero cost beyond
// a nil check.
type Trace struct {
	id    string
	op    string
	start time.Time

	mu       sync.Mutex
	kind     string
	measure  string
	spans    []*Span
	err      string
	degraded bool
}

// ID returns the trace ID ("" for a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Start opens a span. Nil-safe: a nil trace returns a nil span.
func (t *Trace) Start(name string) *Span {
	if t == nil {
		return nil
	}
	sp := &Span{name: name, start: time.Now()}
	t.mu.Lock()
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
	return sp
}

// SetQuery annotates the trace with the query's kind and measure.
func (t *Trace) SetQuery(kind, measure string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.kind, t.measure = kind, measure
	t.mu.Unlock()
}

// Fail records the query's terminal error.
func (t *Trace) Fail(err error) {
	if t == nil || err == nil {
		return
	}
	t.mu.Lock()
	t.err = err.Error()
	t.mu.Unlock()
}

// SetDegraded marks the trace as a degraded (partial) cluster answer.
func (t *Trace) SetDegraded() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.degraded = true
	t.mu.Unlock()
}

// TraceJSON is a finished trace's wire form.
type TraceJSON struct {
	ID         string     `json:"trace_id"`
	Op         string     `json:"op"`
	Kind       string     `json:"kind,omitempty"`
	Measure    string     `json:"measure,omitempty"`
	Start      time.Time  `json:"start"`
	DurationMS float64    `json:"duration_ms"`
	Error      string     `json:"error,omitempty"`
	Degraded   bool       `json:"degraded,omitempty"`
	Spans      []SpanJSON `json:"spans,omitempty"`
}

// snapshot renders the trace with the given total duration.
func (t *Trace) snapshot(dur time.Duration) TraceJSON {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := TraceJSON{
		ID:         t.id,
		Op:         t.op,
		Kind:       t.kind,
		Measure:    t.measure,
		Start:      t.start,
		DurationMS: float64(dur) / float64(time.Millisecond),
		Error:      t.err,
		Degraded:   t.degraded,
	}
	for _, sp := range t.spans {
		sp.mu.Lock()
		out.Spans = append(out.Spans, SpanJSON{
			Name:       sp.name,
			OffsetMS:   float64(sp.start.Sub(t.start)) / float64(time.Millisecond),
			DurationMS: float64(sp.dur) / float64(time.Millisecond),
			Error:      sp.err,
		})
		sp.mu.Unlock()
	}
	return out
}

type traceCtxKey struct{}

// WithTrace attaches a trace to the context; the serving layers below
// (engine, cluster scatter) pick it up with TraceFrom.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, t)
}

// TraceFrom returns the context's trace, or nil — and nil traces make
// every span operation a no-op, so callers never branch.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceCtxKey{}).(*Trace)
	return t
}

// mintID returns a fresh 16-hex-char trace ID.
func mintID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// A broken crypto/rand should not fail queries; an untraceable
		// constant ID is the graceful floor.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// Tracer owns the finished-trace ring served by /debug/trace and the
// slow-query log. One default tracer serves the process; tests inject
// their own through the server/coordinator options.
type Tracer struct {
	mu     sync.Mutex
	slow   time.Duration
	logger *slog.Logger
	ring   []TraceJSON
	next   int
	total  int
}

// NewTracer returns a tracer keeping the last ringSize finished traces
// and logging (via logger, JSON-to-stderr when nil) every query slower
// than slow (0 disables the slow-query log).
func NewTracer(ringSize int, slow time.Duration, logger *slog.Logger) *Tracer {
	if ringSize <= 0 {
		ringSize = 128
	}
	if logger == nil {
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	return &Tracer{slow: slow, logger: logger, ring: make([]TraceJSON, ringSize)}
}

var defaultTracer = NewTracer(128, 0, nil)

// DefaultTracer is the process-wide tracer; uncertserve configures its
// slow-query threshold from -slow-query.
func DefaultTracer() *Tracer { return defaultTracer }

// SetSlowThreshold sets the slow-query log threshold (0 disables).
func (tc *Tracer) SetSlowThreshold(d time.Duration) {
	tc.mu.Lock()
	tc.slow = d
	tc.mu.Unlock()
}

// StartTrace begins a trace under op. An empty id mints a fresh one; a
// non-empty id adopts the caller's (how shards join the coordinator's
// trace via the TraceHeader).
func (tc *Tracer) StartTrace(id, op string) *Trace {
	if id == "" {
		id = mintID()
	}
	return &Trace{id: id, op: op, start: time.Now()}
}

// Finish closes the trace: it lands in the /debug/trace ring and, when it
// ran longer than the slow threshold, in the slow-query log.
func (tc *Tracer) Finish(t *Trace) {
	if t == nil {
		return
	}
	dur := time.Since(t.start)
	rec := t.snapshot(dur)
	tc.mu.Lock()
	tc.ring[tc.next] = rec
	tc.next = (tc.next + 1) % len(tc.ring)
	tc.total++
	slow := tc.slow
	logger := tc.logger
	tc.mu.Unlock()
	if slow > 0 && dur >= slow {
		spans, _ := json.Marshal(rec.Spans)
		logger.LogAttrs(context.Background(), slog.LevelWarn, "slow query",
			slog.String("trace_id", rec.ID),
			slog.String("op", rec.Op),
			slog.String("kind", rec.Kind),
			slog.String("measure", rec.Measure),
			slog.Float64("duration_ms", rec.DurationMS),
			slog.Bool("degraded", rec.Degraded),
			slog.String("error", rec.Error),
			slog.String("spans", string(spans)),
		)
	}
}

// Recent returns up to n finished traces, newest first (n <= 0 returns
// everything retained).
func (tc *Tracer) Recent(n int) []TraceJSON {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	size := len(tc.ring)
	have := tc.total
	if have > size {
		have = size
	}
	if n <= 0 || n > have {
		n = have
	}
	out := make([]TraceJSON, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, tc.ring[((tc.next-i)%size+size)%size])
	}
	return out
}

// HandleDebugTrace serves GET /debug/trace?n=N: the last N finished
// traces (default: the whole ring), newest first.
func (tc *Tracer) HandleDebugTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	n := 0
	if s := r.URL.Query().Get("n"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 0 {
			http.Error(w, "n must be a non-negative integer", http.StatusBadRequest)
			return
		}
		n = v
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(tc.Recent(n))
}
