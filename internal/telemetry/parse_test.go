package telemetry

import (
	"strings"
	"testing"
)

func TestParseExpositionAccepts(t *testing.T) {
	in := `# HELP a_total count
# TYPE a_total counter
a_total 5
# HELP b_seconds latency
# TYPE b_seconds histogram
b_seconds_bucket{kind="topk",le="0.1"} 1
b_seconds_bucket{kind="topk",le="+Inf"} 2
b_seconds_sum{kind="topk"} 0.3
b_seconds_count{kind="topk"} 2
# TYPE c_ratio gauge
c_ratio 0.5
`
	fams, err := ParseExposition(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 3 {
		t.Fatalf("parsed %d families, want 3", len(fams))
	}
	if fams["a_total"].Type != "counter" || fams["a_total"].Samples[0].Value != 5 {
		t.Fatalf("a_total mismatch: %+v", fams["a_total"])
	}
	if got := len(fams["b_seconds"].Samples); got != 4 {
		t.Fatalf("b_seconds has %d samples, want 4", got)
	}
	if fams["b_seconds"].Samples[0].Labels["kind"] != "topk" {
		t.Fatalf("labels mismatch: %+v", fams["b_seconds"].Samples[0])
	}
}

func TestParseExpositionEscapes(t *testing.T) {
	in := "# TYPE a_total counter\n" +
		`a_total{msg="line\nbreak \"q\" back\\slash"} 1` + "\n"
	fams, err := ParseExposition(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	got := fams["a_total"].Samples[0].Labels["msg"]
	if got != "line\nbreak \"q\" back\\slash" {
		t.Fatalf("unescaped label = %q", got)
	}
}

func TestParseExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"orphan sample":      "a_total 5\n",
		"bad value":          "# TYPE a_total counter\na_total five\n",
		"unterminated label": "# TYPE a_total counter\na_total{x=\"y 1\n",
		"repeated label":     "# TYPE a_total counter\na_total{x=\"1\",x=\"2\"} 1\n",
		"unknown TYPE":       "# TYPE a_total matrix\na_total 1\n",
		"histogram w/o +Inf": "# TYPE b_seconds histogram\nb_seconds_bucket{le=\"1\"} 1\nb_seconds_sum 1\nb_seconds_count 1\n",
		"histogram w/o sum":  "# TYPE b_seconds histogram\nb_seconds_bucket{le=\"+Inf\"} 1\nb_seconds_count 1\n",
	}
	for name, in := range cases {
		if _, err := ParseExposition(strings.NewReader(in)); err == nil {
			t.Errorf("%s: parsed without error", name)
		}
	}
}

func TestParseExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.NewCounterVec("rt_q_total", "q", "kind").With("topk").Inc()
	r.NewGauge("rt_depth_ratio", "d").Set(1.5)
	r.NewHistogram("rt_lat_seconds", "l", []float64{0.5}).Observe(0.1)
	var b strings.Builder
	if err := r.Expose(&b); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseExposition(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("our own exposition does not parse: %v\n%s", err, b.String())
	}
	if len(fams) != 3 {
		t.Fatalf("parsed %d families, want 3: %v", len(fams), b.String())
	}
}
