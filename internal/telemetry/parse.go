package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// The exposition parser: enough of the Prometheus text format to lint a
// scrape in CI (cmd/uncertmetrics) and to round-trip the registry in
// tests. It validates structure — HELP/TYPE comments, sample naming,
// label syntax, numeric values, histogram completeness — not semantics.

// Family is one parsed metric family.
type Family struct {
	Name    string
	Help    string
	Type    string // counter, gauge, histogram, summary or untyped
	Samples []Sample
}

// Sample is one parsed exposition line.
type Sample struct {
	// Name is the sample's own name (for histograms: the family name plus
	// _bucket, _sum or _count).
	Name   string
	Labels map[string]string
	Value  float64
}

var (
	sampleNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*`)
	labelNameRE  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*`)
)

// ParseExposition parses a Prometheus text exposition stream into its
// families, keyed by family name. Any structural violation is an error:
// a sample under no (or the wrong) family's TYPE comment, malformed
// labels, a non-numeric value, or a typed histogram missing its +Inf
// bucket, _sum or _count.
func ParseExposition(r io.Reader) (map[string]*Family, error) {
	out := make(map[string]*Family)
	var cur *Family
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fam, err := parseComment(out, line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			if fam != nil {
				cur = fam
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		fam := familyFor(out, cur, s.Name)
		if fam == nil {
			return nil, fmt.Errorf("line %d: sample %s outside its family's TYPE block", lineNo, s.Name)
		}
		fam.Samples = append(fam.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, fam := range out {
		if err := validateFamily(fam); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// parseComment handles # HELP and # TYPE lines (other comments are
// ignored), returning the family a TYPE line opens.
func parseComment(out map[string]*Family, line string) (*Family, error) {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
		return nil, nil // free-form comment
	}
	name := fields[2]
	if sampleNameRE.FindString(name) != name {
		return nil, fmt.Errorf("invalid metric name %q in %s comment", name, fields[1])
	}
	fam := out[name]
	if fam == nil {
		fam = &Family{Name: name, Type: "untyped"}
		out[name] = fam
	}
	if fields[1] == "HELP" {
		if len(fields) == 4 {
			fam.Help = fields[3]
		}
		return nil, nil
	}
	if len(fields) != 4 {
		return nil, fmt.Errorf("TYPE comment for %s carries no type", name)
	}
	switch fields[3] {
	case "counter", "gauge", "histogram", "summary", "untyped":
		fam.Type = fields[3]
	default:
		return nil, fmt.Errorf("unknown TYPE %q for %s", fields[3], name)
	}
	return fam, nil
}

// familyFor resolves which family a sample belongs to: its own name, or —
// for histogram series — the current family when the sample is one of its
// _bucket/_sum/_count children.
func familyFor(out map[string]*Family, cur *Family, sampleName string) *Family {
	if fam := out[sampleName]; fam != nil {
		return fam
	}
	if cur != nil && cur.Type == "histogram" {
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(sampleName, "_bucket"), "_sum"), "_count")
		if base == cur.Name && base != sampleName {
			return cur
		}
	}
	return nil
}

// parseSample parses one `name{labels} value` line.
func parseSample(line string) (Sample, error) {
	name := sampleNameRE.FindString(line)
	if name == "" {
		return Sample{}, fmt.Errorf("malformed sample line %q", line)
	}
	rest := line[len(name):]
	s := Sample{Name: name}
	if strings.HasPrefix(rest, "{") {
		labels, tail, err := parseLabels(rest)
		if err != nil {
			return Sample{}, fmt.Errorf("sample %s: %w", name, err)
		}
		s.Labels = labels
		rest = tail
	}
	rest = strings.TrimSpace(rest)
	// A trailing timestamp is permitted by the format; we accept and drop it.
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		rest = rest[:i]
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return Sample{}, fmt.Errorf("sample %s: value %q is not a number", name, rest)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses a {a="x",b="y"} block, returning the remainder of
// the line.
func parseLabels(in string) (map[string]string, string, error) {
	out := make(map[string]string)
	rest := in[1:] // past '{'
	for {
		rest = strings.TrimLeft(rest, " ")
		if strings.HasPrefix(rest, "}") {
			return out, rest[1:], nil
		}
		name := labelNameRE.FindString(rest)
		if name == "" {
			return nil, "", fmt.Errorf("malformed label block near %q", rest)
		}
		rest = rest[len(name):]
		if !strings.HasPrefix(rest, `="`) {
			return nil, "", fmt.Errorf("label %s is missing a quoted value", name)
		}
		rest = rest[2:]
		var val strings.Builder
		i := 0
		for ; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' {
				if i+1 >= len(rest) {
					return nil, "", fmt.Errorf("label %s: dangling escape", name)
				}
				i++
				switch rest[i] {
				case 'n':
					val.WriteByte('\n')
				case '\\', '"':
					val.WriteByte(rest[i])
				default:
					return nil, "", fmt.Errorf("label %s: unknown escape \\%c", name, rest[i])
				}
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
		}
		if i >= len(rest) {
			return nil, "", fmt.Errorf("label %s: unterminated value", name)
		}
		if _, dup := out[name]; dup {
			return nil, "", fmt.Errorf("label %s repeated", name)
		}
		out[name] = val.String()
		rest = rest[i+1:]
		rest = strings.TrimLeft(rest, " ")
		if strings.HasPrefix(rest, ",") {
			rest = rest[1:]
		}
	}
}

// validateFamily checks per-family invariants; today that is histogram
// completeness (+Inf bucket, _sum, _count per label set).
func validateFamily(fam *Family) error {
	if fam.Type != "histogram" {
		return nil
	}
	type hs struct{ inf, sum, count bool }
	groups := make(map[string]*hs)
	groupOf := func(labels map[string]string) *hs {
		keys := make([]string, 0, len(labels))
		for k, v := range labels {
			if k == "le" {
				continue
			}
			keys = append(keys, k+"="+v)
		}
		sort.Strings(keys)
		key := strings.Join(keys, ",")
		g := groups[key]
		if g == nil {
			g = &hs{}
			groups[key] = g
		}
		return g
	}
	for _, s := range fam.Samples {
		g := groupOf(s.Labels)
		switch {
		case s.Name == fam.Name+"_bucket":
			if s.Labels["le"] == "+Inf" {
				g.inf = true
			}
		case s.Name == fam.Name+"_sum":
			g.sum = true
		case s.Name == fam.Name+"_count":
			g.count = true
		}
	}
	// No groups is legal: a labelled histogram family exposes only its
	// HELP/TYPE header until the first child is observed.
	for key, g := range groups {
		if !g.inf || !g.sum || !g.count {
			return fmt.Errorf("histogram %s{%s} is incomplete (needs an +Inf bucket, _sum and _count)", fam.Name, key)
		}
	}
	return nil
}
