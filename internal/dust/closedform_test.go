package dust

import (
	"math"
	"math/rand"
	"testing"

	"uncertts/internal/stats"
)

// numericCorrelation is the reference implementation: direct integration of
// f_x(u) f_y(u - delta) over the support intersection.
func numericCorrelation(dx, dy stats.Dist, delta float64) float64 {
	return phi(dx, dy, delta, 1e-12)
}

func closedFormPairs() []struct {
	name   string
	dx, dy stats.Dist
} {
	n1 := stats.NewNormal(0, 0.5)
	n2 := stats.NewNormal(0.3, 1.2)
	u1 := stats.NewUniformByStdDev(0.6)
	u2 := stats.NewUniform(-0.5, 2)
	e1 := stats.NewExponentialByStdDev(0.8)
	e2 := stats.Exponential{Scale: 0.4, Shift: 0.1}
	mix := stats.NewMixture([]stats.Dist{n1, u1}, []float64{0.7, 0.3})
	return []struct {
		name   string
		dx, dy stats.Dist
	}{
		{"normal-normal", n1, n2},
		{"normal-uniform", n1, u2},
		{"uniform-normal", u1, n2},
		{"uniform-uniform", u1, u2},
		{"exp-exp", e1, e2},
		{"exp-normal", e1, n1},
		{"normal-exp", n2, e1},
		{"exp-uniform", e1, u1},
		{"uniform-exp", u2, e2},
		{"mixture-normal", mix, n1},
		{"normal-mixture", n2, mix},
		{"mixture-mixture", mix, mix},
	}
}

func TestClosedFormsMatchIntegration(t *testing.T) {
	for _, pair := range closedFormPairs() {
		for _, delta := range []float64{-2.5, -1, -0.3, 0, 0.3, 1, 2.5} {
			got, ok := correlation(pair.dx, pair.dy, delta)
			if !ok {
				t.Fatalf("%s: no closed form", pair.name)
			}
			want := numericCorrelation(pair.dx, pair.dy, delta)
			tol := 1e-6 * (1 + want)
			if math.Abs(got-want) > tol {
				t.Errorf("%s delta=%v: closed form %v vs integration %v",
					pair.name, delta, got, want)
			}
		}
	}
}

func TestClosedFormSymmetryUnderSwap(t *testing.T) {
	// corr(dx, dy, delta) must equal corr(dy, dx, -delta) (substitution
	// u -> u + delta).
	for _, pair := range closedFormPairs() {
		for _, delta := range []float64{-1.2, 0, 0.7} {
			a, ok1 := correlation(pair.dx, pair.dy, delta)
			b, ok2 := correlation(pair.dy, pair.dx, -delta)
			if !ok1 || !ok2 {
				t.Fatalf("%s: missing closed form", pair.name)
			}
			if math.Abs(a-b) > 1e-10*(1+math.Abs(a)) {
				t.Errorf("%s: corr(x,y,%v)=%v but corr(y,x,%v)=%v",
					pair.name, delta, a, -delta, b)
			}
		}
	}
}

func TestClosedFormPeaksNearZeroLag(t *testing.T) {
	// For identical symmetric distributions the correlation peaks at zero
	// lag.
	for _, d := range []stats.Dist{
		stats.NewNormal(0, 0.7),
		stats.NewUniformByStdDev(0.9),
	} {
		peak, _ := correlation(d, d, 0)
		for _, delta := range []float64{0.2, 0.5, 1, 2} {
			v, _ := correlation(d, d, delta)
			if v > peak+1e-12 {
				t.Errorf("%v: corr(%v)=%v exceeds zero-lag peak %v", d, delta, v, peak)
			}
		}
	}
}

func TestClosedFormIntegratesToOne(t *testing.T) {
	// Integral over delta of corr(delta) equals 1 (it is the density of
	// X - Y). Verified numerically for a representative pair.
	e := stats.NewExponentialByStdDev(0.5)
	n := stats.NewNormal(0, 0.4)
	f := func(delta float64) float64 {
		v, _ := correlation(e, n, delta)
		return v
	}
	total := stats.Integrate(f, -8, 8, 1e-10)
	if math.Abs(total-1) > 1e-6 {
		t.Errorf("correlation density integrates to %v, want 1", total)
	}
}

func TestExpNormalOverflowGuard(t *testing.T) {
	// Extreme negative lag pushes the EMG exponent past exp overflow; the
	// log-space branch must return a finite, tiny density.
	e := stats.NewExponentialByStdDev(0.01) // rate 100
	n := stats.NewNormal(0, 0.01)
	v := expNormal(e, n, -0.4) // arg = l/2*(l s^2 - 2c) = 50*(0.01+0.78) huge
	if math.IsNaN(v) || math.IsInf(v, 0) {
		t.Errorf("overflow guard failed: %v", v)
	}
	if v < 0 {
		t.Errorf("density cannot be negative: %v", v)
	}
}

func TestNoClosedFormFallsBack(t *testing.T) {
	// A distribution type outside the family set must report no closed
	// form; Dust.phiAt then integrates. The integration path must agree
	// with the closed form of an equivalent known distribution.
	unknown := unknownDist{}
	if _, ok := correlation(unknown, stats.NewNormal(0, 1), 0); ok {
		t.Error("unexpected closed form for unknown type")
	}
	d := New(Options{TailWeight: -1, Exact: true})
	vUnknown, err := d.Value(0, 0.5, unknown, unknown)
	if err != nil {
		t.Fatal(err)
	}
	known := stats.NewUniform(0, 1)
	vKnown, err := d.Value(0, 0.5, known, known)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vUnknown-vKnown) > 1e-4*(1+vKnown) {
		t.Errorf("fallback integration %v disagrees with closed form %v", vUnknown, vKnown)
	}
}

// unknownDist is U[0,1] implemented as a type the closed-form dispatch does
// not recognise.
type unknownDist struct{}

func (unknownDist) PDF(x float64) float64 {
	if x < 0 || x > 1 {
		return 0
	}
	return 1
}
func (unknownDist) CDF(x float64) float64 {
	switch {
	case x < 0:
		return 0
	case x > 1:
		return 1
	default:
		return x
	}
}
func (unknownDist) Quantile(p float64) float64  { return p }
func (unknownDist) Sample(*rand.Rand) float64   { panic("dust test: Sample unused") }
func (unknownDist) Mean() float64               { return 0.5 }
func (unknownDist) Variance() float64           { return 1.0 / 12 }
func (unknownDist) Support() (float64, float64) { return 0, 1 }
func (unknownDist) String() string              { return "unknown" }
