package dust

import (
	"math"
	"testing"

	"uncertts/internal/stats"
	"uncertts/internal/uncertain"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol
}

func constSeries(id int, obs []float64, err stats.Dist) uncertain.PDFSeries {
	errs := make([]stats.Dist, len(obs))
	for i := range errs {
		errs[i] = err
	}
	return uncertain.PDFSeries{Observations: obs, Errors: errs, ID: id}
}

func TestDustReflexivity(t *testing.T) {
	d := New(Options{})
	for _, errDist := range []stats.Dist{
		stats.NewNormal(0, 0.5),
		stats.NewUniformByStdDev(1),
		stats.NewExponentialByStdDev(0.8),
	} {
		v, err := d.Value(1.3, 1.3, errDist, errDist)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(v, 0, 1e-6) {
			t.Errorf("%v: dust(x, x) = %v, want 0 (the constant k enforces reflexivity)", errDist, v)
		}
	}
}

func TestDustSymmetryInDelta(t *testing.T) {
	d := New(Options{})
	errDist := stats.NewNormal(0, 0.7)
	a, err := d.Value(0, 1.2, errDist, errDist)
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.Value(1.2, 0, errDist, errDist)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(a, b, 1e-9) {
		t.Errorf("dust should depend on |x-y| only: %v vs %v", a, b)
	}
}

func TestDustNormalErrorsProportionalToEuclidean(t *testing.T) {
	// Section 2.3: "DUST is equivalent to the Euclidean distance, in the
	// case where the error of the time series values follows the normal
	// distribution". dust(delta) = delta / (2 sigma) for equal normal
	// errors: phi is the N(0, 2 sigma^2) density, so
	// -log phi(d) + log phi(0) = d^2 / (4 sigma^2).
	sigma := 0.6
	d := New(Options{TailWeight: -1}) // disable tails: exact normal
	errDist := stats.NewNormal(0, sigma)
	for _, delta := range []float64{0.1, 0.5, 1, 2, 4} {
		got, err := d.Value(0, delta, errDist, errDist)
		if err != nil {
			t.Fatal(err)
		}
		want := delta / (2 * sigma)
		if !almostEqual(got, want, 1e-3*(1+want)) {
			t.Errorf("dust(%v) = %v, want %v", delta, got, want)
		}
	}
}

func TestDustMonotoneInDelta(t *testing.T) {
	d := New(Options{})
	for _, errDist := range []stats.Dist{
		stats.NewNormal(0, 0.5),
		stats.NewUniformByStdDev(0.5),
		stats.NewExponentialByStdDev(0.5),
	} {
		prev := -1.0
		for delta := 0.0; delta <= 6; delta += 0.2 {
			v, err := d.Value(0, delta, errDist, errDist)
			if err != nil {
				t.Fatal(err)
			}
			if v < prev-1e-6 {
				t.Errorf("%v: dust not monotone at delta=%v: %v < %v", errDist, delta, v, prev)
			}
			prev = v
		}
	}
}

func TestUniformErrorTailWorkaround(t *testing.T) {
	// Without tails, uniform errors give phi = 0 beyond the support width
	// and dust saturates at the clamp. With tails, values stay finite and
	// informative.
	errDist := stats.NewUniformByStdDev(0.2) // support roughly [-0.35, 0.35]
	noTails := New(Options{TailWeight: -1})
	v, err := noTails.Value(0, 3, errDist, errDist)
	if err != nil {
		t.Fatal(err)
	}
	if v < MaxDust {
		t.Errorf("without tails, out-of-support dust should clamp to MaxDust, got %v", v)
	}
	withTails := New(Options{TailWeight: 1e-4})
	v2, err := withTails.Value(0, 3, errDist, errDist)
	if err != nil {
		t.Fatal(err)
	}
	if v2 >= MaxDust || math.IsInf(v2, 0) || v2 <= 0 {
		t.Errorf("with tails, dust should be finite and positive, got %v", v2)
	}
	// And still monotone past the support edge.
	v3, _ := withTails.Value(0, 4, errDist, errDist)
	if v3 < v2 {
		t.Errorf("tail region should stay monotone: dust(4)=%v < dust(3)=%v", v3, v2)
	}
}

func TestLookupTableMatchesExact(t *testing.T) {
	opts := Options{TableSize: 4096}
	tab := New(opts)
	exactOpts := opts
	exactOpts.Exact = true
	exact := New(exactOpts)
	for _, errDist := range []stats.Dist{
		stats.NewNormal(0, 0.5),
		stats.NewExponentialByStdDev(0.7),
		stats.NewUniformByStdDev(1.2),
	} {
		for _, delta := range []float64{0, 0.3, 1, 2.7, 5} {
			a, err := tab.Value(0, delta, errDist, errDist)
			if err != nil {
				t.Fatal(err)
			}
			b, err := exact.Value(0, delta, errDist, errDist)
			if err != nil {
				t.Fatal(err)
			}
			if !almostEqual(a, b, 1e-2*(1+b)) {
				t.Errorf("%v delta=%v: table=%v exact=%v", errDist, delta, a, b)
			}
		}
	}
}

func TestLookupBeyondTableDomain(t *testing.T) {
	// With the tail workaround disabled, equal normal errors follow the
	// exact linear law dust = delta / (2 sigma) even beyond the table
	// domain (the lookup falls back to direct evaluation there).
	d := New(Options{MaxDelta: 2, TailWeight: -1})
	errDist := stats.NewNormal(0, 0.5)
	v, err := d.Value(0, 10, errDist, errDist) // beyond MaxDelta
	if err != nil {
		t.Fatal(err)
	}
	want := 10.0 / (2 * 0.5)
	if !almostEqual(v, want, 1e-6*want) {
		t.Errorf("out-of-table dust = %v, want %v", v, want)
	}
	// With tails enabled the value must still be finite, positive, and
	// larger than the value at the table edge (monotonicity), but the tail
	// mixture deliberately compresses growth far out.
	dt := New(Options{MaxDelta: 2})
	far, err := dt.Value(0, 10, errDist, errDist)
	if err != nil {
		t.Fatal(err)
	}
	edge, err := dt.Value(0, 2, errDist, errDist)
	if err != nil {
		t.Fatal(err)
	}
	if !(far > edge) || math.IsInf(far, 0) || math.IsNaN(far) {
		t.Errorf("tailed out-of-table dust = %v (edge %v), want finite and larger", far, edge)
	}
}

func TestTablesAreReused(t *testing.T) {
	d := New(Options{})
	errDist := stats.NewNormal(0, 0.5)
	for i := 0; i < 10; i++ {
		if _, err := d.Value(0, float64(i), errDist, errDist); err != nil {
			t.Fatal(err)
		}
	}
	if d.TableCount() != 1 {
		t.Errorf("same distribution pair should share one table, got %d", d.TableCount())
	}
	other := stats.NewNormal(0, 1.5)
	if _, err := d.Value(0, 1, other, other); err != nil {
		t.Fatal(err)
	}
	if d.TableCount() != 2 {
		t.Errorf("distinct parameters should get a second table, got %d", d.TableCount())
	}
	// Equal parameters in a fresh value share the existing table.
	same := stats.NewNormal(0, 0.5)
	if _, err := d.Value(0, 1, same, same); err != nil {
		t.Fatal(err)
	}
	if d.TableCount() != 2 {
		t.Errorf("equal-parameter distributions must share tables, got %d", d.TableCount())
	}
}

func TestDistanceSeries(t *testing.T) {
	d := New(Options{TailWeight: -1})
	errDist := stats.NewNormal(0, 0.5)
	q := constSeries(0, []float64{0, 0, 0}, errDist)
	c := constSeries(1, []float64{1, 1, 1}, errDist)
	got, err := d.Distance(q, c)
	if err != nil {
		t.Fatal(err)
	}
	// Each timestamp contributes dust = 1/(2*0.5) = 1; L2 over 3 gives sqrt(3).
	if !almostEqual(got, math.Sqrt(3), 1e-3) {
		t.Errorf("series distance = %v, want %v", got, math.Sqrt(3))
	}
	// Distance to itself is 0.
	self, err := d.Distance(q, q)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(self, 0, 1e-6) {
		t.Errorf("self distance = %v", self)
	}
}

func TestDistanceValidation(t *testing.T) {
	d := New(Options{})
	errDist := stats.NewNormal(0, 1)
	q := constSeries(0, []float64{1, 2}, errDist)
	if _, err := d.Distance(q, constSeries(1, []float64{1}, errDist)); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := d.Distance(q, uncertain.PDFSeries{}); err == nil {
		t.Error("invalid series should error")
	}
	if _, err := d.Value(0, 1, nil, errDist); err == nil {
		t.Error("nil error distribution should error")
	}
}

func TestDistanceRankingTracksEuclideanForNormalErrors(t *testing.T) {
	// With constant normal errors, DUST is a monotone transform of
	// Euclidean, so rankings must agree.
	d := New(Options{})
	errDist := stats.NewNormal(0, 0.4)
	q := constSeries(0, []float64{0, 0, 0, 0}, errDist)
	near := constSeries(1, []float64{0.1, -0.2, 0.1, 0}, errDist)
	mid := constSeries(2, []float64{1, 1, -1, 0.5}, errDist)
	far := constSeries(3, []float64{3, -3, 2, 2}, errDist)
	dn, _ := d.Distance(q, near)
	dm, _ := d.Distance(q, mid)
	df, _ := d.Distance(q, far)
	if !(dn < dm && dm < df) {
		t.Errorf("ranking broken: near=%v mid=%v far=%v", dn, dm, df)
	}
}

func TestMixedErrorDistributionsPerTimestamp(t *testing.T) {
	// Different error distributions at different timestamps must be
	// honoured: a high-sigma timestamp contributes less dust for the same
	// observed difference.
	d := New(Options{})
	lo := stats.NewNormal(0, 0.2)
	hi := stats.NewNormal(0, 2.0)
	vLo, err := d.Value(0, 1, lo, lo)
	if err != nil {
		t.Fatal(err)
	}
	vHi, err := d.Value(0, 1, hi, hi)
	if err != nil {
		t.Fatal(err)
	}
	if vLo <= vHi {
		t.Errorf("same delta must count more under small error: lo=%v hi=%v", vLo, vHi)
	}
}

func TestAsymmetricErrorPair(t *testing.T) {
	// Different error distributions on the two sides exercise the general
	// integration path.
	d := New(Options{})
	ex := stats.NewNormal(0, 0.3)
	ey := stats.NewExponentialByStdDev(0.6)
	v0, err := d.Value(0, 0, ex, ey)
	if err != nil {
		t.Fatal(err)
	}
	if v0 < 0 || math.IsNaN(v0) {
		t.Errorf("dust(0) = %v", v0)
	}
	v1, err := d.Value(0, 1.5, ex, ey)
	if err != nil {
		t.Fatal(err)
	}
	if v1 <= v0 {
		t.Errorf("dust should grow with delta: %v <= %v", v1, v0)
	}
}

func TestDistanceDTW(t *testing.T) {
	d := New(Options{})
	errDist := stats.NewNormal(0, 0.3)
	// A shifted bump: lock-step DUST sees differences, DTW aligns them away.
	q := constSeries(0, []float64{0, 0, 1, 2, 1, 0, 0, 0}, errDist)
	c := constSeries(1, []float64{0, 0, 0, 1, 2, 1, 0, 0}, errDist)
	lock, err := d.Distance(q, c)
	if err != nil {
		t.Fatal(err)
	}
	warped, err := d.DistanceDTW(q, c)
	if err != nil {
		t.Fatal(err)
	}
	if warped >= lock {
		t.Errorf("DTW-DUST (%v) should beat lock-step DUST (%v) on shifted patterns", warped, lock)
	}
	if _, err := d.DistanceDTW(q, uncertain.PDFSeries{}); err == nil {
		t.Error("invalid series should error")
	}
	// DTW handles unequal lengths.
	short := constSeries(2, []float64{0, 1, 2, 1}, errDist)
	if _, err := d.DistanceDTW(q, short); err != nil {
		t.Errorf("unequal lengths should be fine under DTW: %v", err)
	}
}

func TestExponentialClosedFormAgreement(t *testing.T) {
	// For equal exponential errors with rate l = 1/scale, the correlation
	// integral has the closed form (l/2) exp(-l |delta|), so
	// dust^2 = l * |delta|. Verify the numerical path against it.
	scale := 0.8
	d := New(Options{TailWeight: -1, Exact: true})
	errDist := stats.NewExponentialByStdDev(scale)
	l := 1 / scale
	for _, delta := range []float64{0.2, 0.5, 1, 2} {
		got, err := d.Value(0, delta, errDist, errDist)
		if err != nil {
			t.Fatal(err)
		}
		want := math.Sqrt(l * delta)
		if !almostEqual(got, want, 2e-2*(1+want)) {
			t.Errorf("delta=%v: dust=%v, closed form %v", delta, got, want)
		}
	}
}

func TestDistanceEarlyAbandon(t *testing.T) {
	d := New(Options{})
	errDist := stats.NewNormal(0, 0.5)
	q := constSeries(0, []float64{0, 1, 2, 3, 2, 1, 0, -1}, errDist)
	c := constSeries(1, []float64{1, 0, 3, 2, 1, 2, -1, 0}, errDist)

	want, err := d.Distance(q, c)
	if err != nil {
		t.Fatal(err)
	}
	got, complete, err := d.DistanceEarlyAbandon(q, c, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if !complete || got != want {
		t.Fatalf("cutoff=+Inf: got (%v, %v), want (%v, true)", got, complete, want)
	}
	// A cutoff a hair above the squared distance completes (want*want itself
	// can round below the true accumulated sum); half of it abandons with a
	// partial value already past the cutoff.
	if _, complete, err := d.DistanceEarlyAbandon(q, c, want*want*(1+1e-12)); err != nil || !complete {
		t.Fatalf("cutoff just above dist^2 should complete (err=%v)", err)
	}
	cut := want * want / 2
	got, complete, err = d.DistanceEarlyAbandon(q, c, cut)
	if err != nil {
		t.Fatal(err)
	}
	if complete {
		t.Fatal("cutoff below dist^2 should abandon")
	}
	if got*got <= cut {
		t.Fatalf("abandoned partial %v should exceed cutoff %v", got*got, cut)
	}

	if _, _, err := d.DistanceEarlyAbandon(q, constSeries(2, []float64{1}, errDist), 1); err == nil {
		t.Fatal("want length-mismatch error")
	}
	if _, _, err := d.DistanceEarlyAbandon(q, uncertain.PDFSeries{}, 1); err == nil {
		t.Fatal("want validation error")
	}
}
