package dust

import (
	"math"

	"uncertts/internal/stats"
)

// correlation returns the cross-correlation of two error densities at lag
// delta — Integral f_x(u) f_y(u - delta) du — using a closed form whenever
// one exists for the distribution pair, and reporting whether it did.
//
// Closed forms exist for every pair drawn from {normal, uniform, shifted
// exponential} and extend to finite mixtures of such components by
// bilinearity. They matter because DUST builds a lookup table per distinct
// error distribution, and the tail workaround wraps every distribution in a
// mixture: without the mixture decomposition even pure-normal errors would
// fall back to numerical integration.
func correlation(dx, dy stats.Dist, delta float64) (float64, bool) {
	switch x := dx.(type) {
	case stats.Normal:
		switch y := dy.(type) {
		case stats.Normal:
			return normalNormal(x, y, delta), true
		case stats.Uniform:
			return uniformNormal(y, x, -delta), true
		case stats.Exponential:
			return expNormal(y, x, -delta), true
		case stats.Mixture:
			return mixtureRight(dx, y, delta)
		}
	case stats.Uniform:
		switch y := dy.(type) {
		case stats.Normal:
			return uniformNormal(x, y, delta), true
		case stats.Uniform:
			return uniformUniform(x, y, delta), true
		case stats.Exponential:
			return expUniform(y, x, -delta), true
		case stats.Mixture:
			return mixtureRight(dx, y, delta)
		}
	case stats.Exponential:
		switch y := dy.(type) {
		case stats.Normal:
			return expNormal(x, y, delta), true
		case stats.Uniform:
			return expUniform(x, y, delta), true
		case stats.Exponential:
			return expExp(x, y, delta), true
		case stats.Mixture:
			return mixtureRight(dx, y, delta)
		}
	case stats.Mixture:
		return mixtureLeft(x, dy, delta)
	}
	return 0, false
}

// mixtureLeft expands sum_i w_i corr(c_i, dy).
func mixtureLeft(x stats.Mixture, dy stats.Dist, delta float64) (float64, bool) {
	var acc float64
	for i, c := range x.Components {
		v, ok := correlation(c, dy, delta)
		if !ok {
			return 0, false
		}
		acc += x.Weights[i] * v
	}
	return acc, true
}

// mixtureRight expands sum_j w_j corr(dx, c_j).
func mixtureRight(dx stats.Dist, y stats.Mixture, delta float64) (float64, bool) {
	var acc float64
	for j, c := range y.Components {
		v, ok := correlation(dx, c, delta)
		if !ok {
			return 0, false
		}
		acc += y.Weights[j] * v
	}
	return acc, true
}

// normalNormal: Integral N(u; m1, s1) N(u - d; m2, s2) du equals the
// N(m1 - m2, s1^2 + s2^2) density at d.
func normalNormal(x, y stats.Normal, delta float64) float64 {
	mu := x.Mu - y.Mu
	sd := math.Hypot(x.Sigma, y.Sigma)
	z := (delta - mu) / sd
	return math.Exp(-z*z/2) / (sd * math.Sqrt(2*math.Pi))
}

// uniformUniform: the correlation of U[a1,b1] with U[a2,b2] at lag d is the
// length of [a1,b1] ∩ [a2+d, b2+d] divided by the product of the widths.
func uniformUniform(x, y stats.Uniform, delta float64) float64 {
	lo := math.Max(x.A, y.A+delta)
	hi := math.Min(x.B, y.B+delta)
	if hi <= lo {
		return 0
	}
	return (hi - lo) / ((x.B - x.A) * (y.B - y.A))
}

// uniformNormal: Integral_{a}^{b} 1/(b-a) * N(u - d; mu, s) du
// = [Phi((b-d-mu)/s) - Phi((a-d-mu)/s)] / (b - a).
func uniformNormal(u stats.Uniform, n stats.Normal, delta float64) float64 {
	zHi := (u.B - delta - n.Mu) / n.Sigma
	zLo := (u.A - delta - n.Mu) / n.Sigma
	return (stats.NormalCDF(zHi) - stats.NormalCDF(zLo)) / (u.B - u.A)
}

// expExp: correlation of two shifted exponentials. With rates l1 = 1/s1,
// l2 = 1/s2 and effective lag t = delta - shift1 + shift2 (shifts translate
// the supports), the unshifted integral over u >= max(0, t) is
//
//	l1 l2 / (l1 + l2) * exp(-l1 max(0,t)) * exp(-l2 (max(0,t) - t))
func expExp(x, y stats.Exponential, delta float64) float64 {
	l1 := 1 / x.Scale
	l2 := 1 / y.Scale
	t := delta + x.Shift - y.Shift
	m := math.Max(0, t)
	return l1 * l2 / (l1 + l2) * math.Exp(-l1*m) * math.Exp(-l2*(m-t))
}

// expNormal: correlation of a shifted exponential with a normal — the
// exponentially-modified-Gaussian density form:
//
//	Integral_{v >= 0} l e^{-l v} N(v - t; mu, s) dv
//	= l/2 * exp(l/2 (2(mu+t) + l s^2)) ... standard EMG with location.
//
// Concretely, with X ~ Exp(l) - shift and the normal N(mu, s^2):
// corr(d) = Integral f_exp(u) f_norm(u - d) du; substituting v = u + shift:
// corr(d) = Integral_{v>=0} l e^{-l v} N(v - (d + shift + mu'); ...) dv
// where the normal is evaluated at (v - shift - d - mu).
func expNormal(e stats.Exponential, n stats.Normal, delta float64) float64 {
	l := 1 / e.Scale
	// Target: Integral_{v >= 0} l exp(-l v) * N(v - c; 0, s) dv with
	// c = delta + e.Shift + n.Mu and s = n.Sigma. This is the EMG density
	// of (Exp(l) + N(0, s^2)) evaluated at c:
	//   l/2 * exp(l/2 (l s^2 - 2c)) * erfc((l s^2 - c) / (s sqrt(2)))
	c := delta + e.Shift + n.Mu
	s := n.Sigma
	arg := l / 2 * (l*s*s - 2*c)
	z := (l*s*s - c) / (s * math.Sqrt2)
	// Guard overflow: combine exp and erfc in log space when arg is large.
	if arg > 700 {
		// erfc(z) ~ exp(-z^2)/(z sqrt(pi)) for large z; combine logs.
		if z <= 0 {
			return math.Inf(1) // cannot happen for valid densities
		}
		logv := math.Log(l/2) + arg + (-z*z - math.Log(z*math.Sqrt(math.Pi)))
		return math.Exp(logv)
	}
	return l / 2 * math.Exp(arg) * math.Erfc(z)
}

// expUniform: Integral f_exp(u) f_uni(u - d) du. The uniform picks out a
// window [A+d, B+d]; over that window the exponential density integrates in
// closed form:
//
//	1/(B-A) * [F_exp(hi) - F_exp(lo)]
func expUniform(e stats.Exponential, u stats.Uniform, delta float64) float64 {
	lo := u.A + delta
	hi := u.B + delta
	return (e.CDF(hi) - e.CDF(lo)) / (u.B - u.A)
}
