// Package dust implements the DUST dissimilarity of Sarangi and Murthy
// (SIGKDD 2010), described in Section 2.3 of the paper.
//
// DUST isolates uncertainty handling in a similarity function phi:
//
//	phi(|x - y|) = Pr(dist(r(x), r(y)) = 0)
//
// where r(x), r(y) are the unknown true values behind observations x and y.
// With a flat prior on values (DUST's uniform-value assumption), the
// posterior of the truth given an observation is the reflected error
// density, and phi reduces to the cross-correlation of the two error
// densities at lag delta = x - y:
//
//	phi(delta) = Integral f_x(u) f_y(u - delta) du
//
// The per-value dissimilarity is then
//
//	dust(x, y) = sqrt( -log phi(|x-y|) + log phi(0) )
//
// and the whole-series distance is the L2 combination of per-timestamp dust
// values (Equation 13). For normally distributed errors this is
// proportional to the Euclidean distance, which the tests verify.
//
// phi has closed forms for the normal family; for everything else it is
// evaluated by numerical integration over the intersection of the effective
// supports. Because evaluation is expensive and experiments call it
// millions of times, per-error-distribution lookup tables over a delta grid
// are built lazily and interpolated (the "DUST lookup tables" of Section
// 4.2.1).
//
// Uniform errors make phi exactly zero for |delta| larger than the support
// width, so dust degenerates to log 0. The paper's workaround — "adding two
// tails to the uniform error, so that the error probability density
// function is never exactly zero" — is implemented by mixing every error
// distribution with a small wide-normal tail component (Options.TailWeight).
package dust

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"uncertts/internal/stats"
	"uncertts/internal/uncertain"
)

// ErrLengthMismatch is returned when the two series differ in length.
var ErrLengthMismatch = errors.New("dust: series lengths differ")

// Options configures a Dust evaluator.
type Options struct {
	// TableSize is the number of grid points of each phi lookup table
	// (default 2048). Zero or negative selects the default.
	TableSize int
	// MaxDelta is the largest |x-y| covered by the tables (default 16).
	// Larger deltas fall back to direct integration.
	MaxDelta float64
	// TailWeight is the mixture weight of the wide-normal tail added to
	// every error distribution so that phi never vanishes (default 1e-4).
	// Set negative to disable the workaround (then bounded-support errors
	// can yield +Inf dust values, clamped to MaxDust).
	TailWeight float64
	// TailSpread scales the tail component's standard deviation relative to
	// the error's own (default 5).
	TailSpread float64
	// Exact disables the lookup tables; every phi is integrated directly.
	// It exists for the table-resolution ablation.
	Exact bool
	// IntegrationTol is the adaptive-quadrature tolerance (default 1e-9).
	IntegrationTol float64
}

func (o Options) withDefaults() Options {
	if o.TableSize <= 0 {
		o.TableSize = 2048
	}
	if o.MaxDelta <= 0 {
		o.MaxDelta = 16
	}
	if o.TailWeight == 0 {
		o.TailWeight = 1e-4
	}
	if o.TailWeight < 0 {
		o.TailWeight = 0
	}
	if o.TailSpread <= 0 {
		o.TailSpread = 5
	}
	if o.IntegrationTol <= 0 {
		o.IntegrationTol = 1e-9
	}
	return o
}

// MaxDust caps the per-value dust distance when phi underflows to zero and
// the tail workaround is disabled.
const MaxDust = 1e6

// Dust evaluates DUST distances. It is safe for concurrent use; the lazily
// built lookup tables are guarded by a mutex.
type Dust struct {
	opts Options

	mu     sync.Mutex
	tables map[tableKey]*phiTable
}

// tableKey identifies a phi table by the pair of error distributions. The
// string forms include the parameters, so equal-parameter distributions
// share a table.
type tableKey struct{ x, y string }

// New returns a Dust evaluator with the given options.
func New(opts Options) *Dust {
	return &Dust{opts: opts.withDefaults(), tables: make(map[tableKey]*phiTable)}
}

// phiTable tabulates dust^2(delta) = -log phi(delta) + log phi(0) on a
// uniform delta grid.
type phiTable struct {
	maxDelta float64
	step     float64
	dust2    []float64
	logPhi0  float64
	errX     stats.Dist
	errY     stats.Dist
}

// withTail mixes d with a wide zero-mean normal so the density never
// vanishes.
func (o Options) withTail(d stats.Dist) stats.Dist {
	if o.TailWeight <= 0 {
		return d
	}
	sd := math.Sqrt(d.Variance())
	if sd <= 0 || math.IsNaN(sd) {
		sd = 1
	}
	tail := stats.NewNormal(0, o.TailSpread*sd)
	return stats.NewMixture([]stats.Dist{d, tail}, []float64{1 - o.TailWeight, o.TailWeight})
}

// phi integrates f_x(u) * f_y(u - delta) over the intersection of the
// effective supports.
func phi(errX, errY stats.Dist, delta, tol float64) float64 {
	loX, hiX := errX.Support()
	loY, hiY := errY.Support()
	lo := math.Max(loX, loY+delta)
	hi := math.Min(hiX, hiY+delta)
	if lo >= hi {
		return 0
	}
	f := func(u float64) float64 { return errX.PDF(u) * errY.PDF(u-delta) }
	v := stats.Integrate(f, lo, hi, tol)
	if v < 0 {
		v = 0
	}
	return v
}

// globalTables shares phi tables across Dust evaluators: experiments create
// a fresh evaluator per run, but tables depend only on (options, error
// distribution pair) and are expensive to build, so they are memoised
// process-wide.
var (
	globalTableMu sync.Mutex
	globalTables  = map[globalTableKey]*phiTable{}
)

type globalTableKey struct {
	x, y       string
	tableSize  int
	maxDelta   float64
	tailWeight float64
	tailSpread float64
}

func (d *Dust) table(errX, errY stats.Dist) *phiTable {
	key := tableKey{errX.String(), errY.String()}
	d.mu.Lock()
	if t, ok := d.tables[key]; ok {
		d.mu.Unlock()
		return t
	}
	d.mu.Unlock()

	gkey := globalTableKey{
		x: key.x, y: key.y,
		tableSize:  d.opts.TableSize,
		maxDelta:   d.opts.MaxDelta,
		tailWeight: d.opts.TailWeight,
		tailSpread: d.opts.TailSpread,
	}
	globalTableMu.Lock()
	t, ok := globalTables[gkey]
	if !ok {
		t = d.buildTable(errX, errY)
		globalTables[gkey] = t
	}
	globalTableMu.Unlock()

	d.mu.Lock()
	d.tables[key] = t
	d.mu.Unlock()
	return t
}

func (d *Dust) buildTable(errX, errY stats.Dist) *phiTable {
	ex := d.opts.withTail(errX)
	ey := d.opts.withTail(errY)
	n := d.opts.TableSize
	t := &phiTable{
		maxDelta: d.opts.MaxDelta,
		step:     d.opts.MaxDelta / float64(n-1),
		dust2:    make([]float64, n),
		errX:     ex,
		errY:     ey,
	}
	phi0 := d.phiAt(ex, ey, 0)
	if phi0 <= 0 {
		phi0 = math.SmallestNonzeroFloat64
	}
	t.logPhi0 = math.Log(phi0)
	for i := 0; i < n; i++ {
		delta := float64(i) * t.step
		t.dust2[i] = d.dust2At(ex, ey, delta, t.logPhi0)
	}
	return t
}

// phiAt picks the closed form when possible (all pairs from the
// normal/uniform/exponential families and their mixtures have one — see
// closedform.go), integration otherwise.
func (d *Dust) phiAt(errX, errY stats.Dist, delta float64) float64 {
	if v, ok := correlation(errX, errY, delta); ok {
		if v < 0 {
			v = 0
		}
		return v
	}
	return phi(errX, errY, delta, d.opts.IntegrationTol)
}

// dust2At returns the squared per-value dust distance at lag delta.
func (d *Dust) dust2At(errX, errY stats.Dist, delta, logPhi0 float64) float64 {
	p := d.phiAt(errX, errY, delta)
	if p <= 0 {
		return MaxDust * MaxDust
	}
	v := logPhi0 - math.Log(p) // -log phi(delta) + log phi(0)
	if v < 0 {
		// phi cannot genuinely exceed phi(0) (the autocorrelation peaks at
		// zero lag); tiny negatives are integration noise.
		v = 0
	}
	return v
}

// Value returns dust(x, y) for two observed values whose errors follow errX
// and errY.
func (d *Dust) Value(x, y float64, errX, errY stats.Dist) (float64, error) {
	if errX == nil || errY == nil {
		return 0, errors.New("dust: nil error distribution")
	}
	delta := math.Abs(x - y)
	if d.opts.Exact {
		ex := d.opts.withTail(errX)
		ey := d.opts.withTail(errY)
		phi0 := d.phiAt(ex, ey, 0)
		if phi0 <= 0 {
			phi0 = math.SmallestNonzeroFloat64
		}
		v := d.dust2At(ex, ey, delta, math.Log(phi0))
		return math.Sqrt(v), nil
	}
	t := d.table(errX, errY)
	return math.Sqrt(t.lookup(delta, d)), nil
}

// lookup interpolates dust^2 at delta, falling back to direct evaluation
// beyond the table domain.
func (t *phiTable) lookup(delta float64, d *Dust) float64 {
	if delta >= t.maxDelta {
		return d.dust2At(t.errX, t.errY, delta, t.logPhi0)
	}
	pos := delta / t.step
	i := int(pos)
	if i >= len(t.dust2)-1 {
		return t.dust2[len(t.dust2)-1]
	}
	f := pos - float64(i)
	return t.dust2[i]*(1-f) + t.dust2[i+1]*f
}

// Distance returns the DUST distance between two PDF-model uncertain series
// (Equation 13): sqrt( sum_i dust(x_i, y_i)^2 ).
//
// The per-timestamp error distributions are taken from the series
// themselves, which is how DUST exploits mixed error distributions
// (Section 3.1: DUST "can take into account mixed distributions for the
// uncertainty errors").
func (d *Dust) Distance(q, c uncertain.PDFSeries) (float64, error) {
	if err := q.Validate(); err != nil {
		return 0, err
	}
	if err := c.Validate(); err != nil {
		return 0, err
	}
	if q.Len() != c.Len() {
		return 0, fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, q.Len(), c.Len())
	}
	var acc float64
	for i := 0; i < q.Len(); i++ {
		v, err := d.Value(q.Observations[i], c.Observations[i], q.Errors[i], c.Errors[i])
		if err != nil {
			return 0, fmt.Errorf("dust: timestamp %d: %w", i, err)
		}
		acc += v * v
	}
	return math.Sqrt(acc), nil
}

// DistanceEarlyAbandon is Distance with a cutoff on the accumulated squared
// per-timestamp dust values: once the running sum of Equation 13 exceeds
// cutoff the scan abandons, returning the partial accumulation and false. A
// completed scan returns exactly the value Distance would (same
// accumulation order), and completion implies dist^2 <= cutoff. The query
// engine uses this with the current k-th-best distance as the cutoff,
// sharing one evaluator — and therefore one set of phi lookup tables —
// across a whole batch of queries.
func (d *Dust) DistanceEarlyAbandon(q, c uncertain.PDFSeries, cutoff float64) (float64, bool, error) {
	if err := q.Validate(); err != nil {
		return 0, false, err
	}
	if err := c.Validate(); err != nil {
		return 0, false, err
	}
	if q.Len() != c.Len() {
		return 0, false, fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, q.Len(), c.Len())
	}
	var acc float64
	for i := 0; i < q.Len(); i++ {
		v, err := d.Value(q.Observations[i], c.Observations[i], q.Errors[i], c.Errors[i])
		if err != nil {
			return 0, false, fmt.Errorf("dust: timestamp %d: %w", i, err)
		}
		acc += v * v
		if acc > cutoff {
			return math.Sqrt(acc), false, nil
		}
	}
	return math.Sqrt(acc), true, nil
}

// DistanceDTW combines per-timestamp dust values under dynamic time
// warping instead of lock-step alignment (Section 3.2 notes MUNICH and DUST
// support DTW). The DP minimises the sum of squared dust values along the
// warping path and returns its square root.
func (d *Dust) DistanceDTW(q, c uncertain.PDFSeries) (float64, error) {
	if err := q.Validate(); err != nil {
		return 0, err
	}
	if err := c.Validate(); err != nil {
		return 0, err
	}
	n, m := q.Len(), c.Len()
	prev := make([]float64, m+1)
	curr := make([]float64, m+1)
	for j := range prev {
		prev[j] = math.Inf(1)
	}
	prev[0] = 0
	for i := 1; i <= n; i++ {
		curr[0] = math.Inf(1)
		for j := 1; j <= m; j++ {
			v, err := d.Value(q.Observations[i-1], c.Observations[j-1], q.Errors[i-1], c.Errors[j-1])
			if err != nil {
				return 0, err
			}
			best := prev[j]
			if prev[j-1] < best {
				best = prev[j-1]
			}
			if curr[j-1] < best {
				best = curr[j-1]
			}
			curr[j] = v*v + best
		}
		prev, curr = curr, prev
	}
	return math.Sqrt(prev[m]), nil
}

// TableCount reports how many phi tables have been built; exposed for the
// table-reuse tests and the ablation bench.
func (d *Dust) TableCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.tables)
}
