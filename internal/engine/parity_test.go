package engine

import (
	"math"
	"reflect"
	"testing"

	"uncertts/internal/corpus"
)

func paritySeries(length, samplesPerTS int, seed float64) corpus.Series {
	s := corpus.Series{Values: make([]float64, length)}
	for i := range s.Values {
		s.Values[i] = math.Sin(seed+float64(i)*0.31) + 0.2*math.Cos(seed*1.7+float64(i)*0.11)
	}
	if samplesPerTS > 0 {
		s.Samples = make([][]float64, length)
		for i := range s.Samples {
			row := make([]float64, samplesPerTS)
			for j := range row {
				row[j] = s.Values[i] + 0.15*math.Sin(seed+float64(i*samplesPerTS+j))
			}
			s.Samples[i] = row
		}
	}
	return s
}

// TestArenaSliceParityAllMeasures is the bit-identity property of the
// columnar refactor: an engine reading through the dense arena fast path
// and an engine reading the same data through the slice-backed fallback
// (a snapshot with deleted rows awaiting compaction) must return exactly
// the same answers — same IDs, same float64 bits — for every measure,
// every query shape, and every worker count.
func TestArenaSliceParityAllMeasures(t *testing.T) {
	const n, length, samples = 24, 32, 4
	c := corpus.New(corpus.Config{ReportedSigma: 0.4, Segments: 8})
	batch := make([]corpus.Series, n)
	for i := range batch {
		batch[i] = paritySeries(length, samples, float64(i)*0.83)
	}
	if _, err := c.InsertBatch(batch); err != nil {
		t.Fatal(err)
	}
	dense := c.Snapshot()
	if _, ok := dense.Columns(); !ok {
		t.Fatal("insert-only snapshot is not dense")
	}
	// Two sacrificial inserts plus their deletes leave the same n entries
	// resident but the arena sparse (2 dead rows of 26 stays under the
	// compaction threshold), forcing every engine fallback path.
	extra, err := c.InsertBatch([]corpus.Series{
		paritySeries(length, samples, 50.5), paritySeries(length, samples, 51.5),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(extra...); err != nil {
		t.Fatal(err)
	}
	sparse := c.Snapshot()
	if _, ok := sparse.Columns(); ok {
		t.Fatal("post-delete snapshot is unexpectedly dense")
	}
	if sparse.Len() != n {
		t.Fatalf("sparse snapshot holds %d series, want %d", sparse.Len(), n)
	}

	for _, base := range []Options{
		{Measure: MeasureEuclidean},
		{Measure: MeasureUMA},
		{Measure: MeasureUEMA},
		{Measure: MeasureDTW},
		{Measure: MeasureDUST},
		{Measure: MeasurePROUD},
		{Measure: MeasureMUNICH},
	} {
		for _, workers := range []int{1, 2, 8} {
			opts := base
			opts.Workers = workers
			opts.ShardSize = 5 // many shards, so parallelism is exercised
			ed, err := NewFromSnapshot(dense, opts)
			if err != nil {
				t.Fatalf("%s/w=%d: dense engine: %v", base.Measure, workers, err)
			}
			es, err := NewFromSnapshot(sparse, opts)
			if err != nil {
				t.Fatalf("%s/w=%d: sparse engine: %v", base.Measure, workers, err)
			}
			for _, qi := range []int{0, 7, 23} {
				if base.Measure.Probabilistic() {
					eps := obsEuclidean(t, dense, qi, (qi+5)%n) * 1.05
					gotR, err1 := ed.ProbRange(qi, eps, 0.3)
					wantR, err2 := es.ProbRange(qi, eps, 0.3)
					if err1 != nil || err2 != nil {
						t.Fatalf("%s/w=%d q=%d: ProbRange errs %v / %v", base.Measure, workers, qi, err1, err2)
					}
					if !reflect.DeepEqual(gotR, wantR) {
						t.Errorf("%s/w=%d q=%d: ProbRange dense %v != sparse %v", base.Measure, workers, qi, gotR, wantR)
					}
					gotK, err1 := ed.ProbTopK(qi, eps, 4)
					wantK, err2 := es.ProbTopK(qi, eps, 4)
					if err1 != nil || err2 != nil {
						t.Fatalf("%s/w=%d q=%d: ProbTopK errs %v / %v", base.Measure, workers, qi, err1, err2)
					}
					if !reflect.DeepEqual(gotK, wantK) {
						t.Errorf("%s/w=%d q=%d: ProbTopK dense %v != sparse %v", base.Measure, workers, qi, gotK, wantK)
					}
					continue
				}
				gotK, err1 := ed.TopK(qi, 5)
				wantK, err2 := es.TopK(qi, 5)
				if err1 != nil || err2 != nil {
					t.Fatalf("%s/w=%d q=%d: TopK errs %v / %v", base.Measure, workers, qi, err1, err2)
				}
				if !reflect.DeepEqual(gotK, wantK) {
					t.Errorf("%s/w=%d q=%d: TopK dense %v != sparse %v", base.Measure, workers, qi, gotK, wantK)
				}
				eps, err := ed.Distance(qi, (qi+5)%n)
				if err != nil {
					t.Fatal(err)
				}
				eps *= 1.1
				gotR, err1 := ed.Range(qi, eps)
				wantR, err2 := es.Range(qi, eps)
				if err1 != nil || err2 != nil {
					t.Fatalf("%s/w=%d q=%d: Range errs %v / %v", base.Measure, workers, qi, err1, err2)
				}
				if !reflect.DeepEqual(gotR, wantR) {
					t.Errorf("%s/w=%d q=%d: Range dense %v != sparse %v", base.Measure, workers, qi, gotR, wantR)
				}
			}
		}
	}
}

// obsEuclidean computes the plain Euclidean distance between the
// observation vectors at two snapshot positions — the eps space the
// probabilistic measures quantify over.
func obsEuclidean(t *testing.T, snap *corpus.Snapshot, qi, ci int) float64 {
	t.Helper()
	a, b := snap.Entry(qi).PDF.Observations, snap.Entry(ci).PDF.Observations
	var acc float64
	for i := range a {
		d := a[i] - b[i]
		acc += d * d
	}
	return math.Sqrt(acc)
}
