// Package engine is the query-serving layer of the reproduction: a top-k /
// range similarity engine that sits above a corpus snapshot and prunes
// aggressively before any work reaches the hot distance kernels.
//
// Pruning devices, one family per measure:
//
//   - lock-step measures (Euclidean, UMA, UEMA over the filtered series)
//     early-abandon the squared-distance accumulation once the running sum
//     exceeds the current k-th best;
//   - banded DTW first checks the LB_Keogh envelope lower bound and only
//     runs the DP — itself early-abandoning per row — when the bound cannot
//     exclude the candidate;
//   - DUST early-abandons the Equation 13 accumulation and shares a single
//     evaluator, and therefore a single set of phi lookup tables, across
//     every query of a batch;
//   - MUNICH (probabilistic queries) walks a segment-envelope lower bound,
//     the exact bounding-interval prune and (when the refine is exact) a
//     per-timestamp sample-pair probability bound; surviving candidates
//     pay for a refine step that abandons early in the estimator's own
//     arithmetic;
//   - PROUD (probabilistic queries) accumulates the distance moments over a
//     prefix of timestamps and stops as soon as the sound prefix bounds
//     (Stream.earlyDecision's machinery plus suffix-energy gap bounds)
//     force the predicate outcome.
//
// Since the corpus refactor the engine is built over an immutable
// corpus.Snapshot (NewFromSnapshot); building over a core.Workload (New)
// is a thin wrapper over the workload's snapshot. The per-candidate
// artifacts every device needs — LB_Keogh envelopes, filtered vectors,
// suffix energies, MUNICH segment envelopes, DUST phi tables — are
// maintained incrementally by the corpus and reused here whenever the
// engine options match the corpus geometry, so constructing an engine for
// a fresh snapshot is nearly free and writers never invalidate a running
// query (snapshot isolation).
//
// Queries come in two shapes. Index queries (TopK, Range, ProbRange,
// ProbTopK and their batch forms) take a position in the snapshot and
// exclude the query series itself, exactly as the original batch harness
// did. Ad-hoc queries (Prepare + PreparedQuery methods) take an arbitrary
// series — observation vector, error model, sample model — that need not
// be resident in any corpus; the prepared-query object owns all per-query
// derived state (filtered vector, suffix energies, sample envelope) so
// repeated queries amortise their setup, and carries an optional
// per-request worker budget.
//
// Execution is batched and sharded: the candidate space of every query is
// cut into shards and the (query, shard) pairs are drained by the chunked
// work-stealing executor of internal/core (RunSharded). Workers cooperate
// through a per-query atomic bound — the best k-th distance any shard has
// proven so far — which tightens pruning across shard boundaries while
// staying exact: a published bound is always the k-th best of a subset of
// candidates, hence an upper bound on the true k-th distance, so a
// candidate abandoned against it can never belong to the answer. Results
// are therefore bit-identical to the naive full scan for every worker
// count, which the tests assert.
package engine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"

	"uncertts/internal/arena"
	"uncertts/internal/core"
	"uncertts/internal/corpus"
	"uncertts/internal/distance"
	"uncertts/internal/dust"
	"uncertts/internal/munich"
	"uncertts/internal/qerr"
	"uncertts/internal/query"
	"uncertts/internal/timeseries"
)

// rows is the engine's per-candidate vector table in one of two layouts:
// a dense arena matrix (the fast path — row ci is arithmetic into one
// contiguous array, so a scan in candidate order is a sequential read) or a
// plain slice of views (the fallback for non-dense snapshots and for
// vectors derived locally when the engine options diverge from the corpus
// geometry). Both layouts serve bit-identical values.
type rows struct {
	mat   arena.Matrix
	views [][]float64
}

func matRows(m arena.Matrix) rows { return rows{mat: m} }
func viewRows(v [][]float64) rows { return rows{views: v} }
func (r rows) at(ci int) []float64 {
	if r.views != nil {
		return r.views[ci]
	}
	return r.mat.Row(ci)
}

// Measure selects the similarity measure the engine serves.
type Measure int

const (
	// MeasureEuclidean scans the perturbed observations with plain
	// Euclidean distance (the Section 4.1.2 baseline).
	MeasureEuclidean Measure = iota
	// MeasureUMA scans UMA-filtered series (Eq. 17) with Euclidean
	// distance.
	MeasureUMA
	// MeasureUEMA scans UEMA-filtered series (Eq. 18) with Euclidean
	// distance.
	MeasureUEMA
	// MeasureDTW scans the perturbed observations with Sakoe-Chiba banded
	// DTW, pruned by LB_Keogh.
	MeasureDTW
	// MeasureDUST scans with the DUST dissimilarity (Equation 13), sharing
	// one set of phi tables across the batch.
	MeasureDUST
	// MeasurePROUD serves probabilistic threshold queries (ProbRange,
	// ProbTopK) with PROUD's normal approximation of the squared distance
	// over the perturbed observations, pruned by sound prefix bounds.
	MeasurePROUD
	// MeasureMUNICH serves probabilistic threshold queries over the
	// repeated-observation model (every resident series must carry
	// samples), pruned by envelope and bounding-interval bounds before any
	// combination counting.
	MeasureMUNICH
)

// Measures lists every measure the engine serves, in declaration order.
func Measures() []Measure {
	return []Measure{MeasureEuclidean, MeasureUMA, MeasureUEMA, MeasureDTW, MeasureDUST, MeasurePROUD, MeasureMUNICH}
}

// String names the measure.
func (m Measure) String() string {
	switch m {
	case MeasureEuclidean:
		return "Euclidean"
	case MeasureUMA:
		return "UMA"
	case MeasureUEMA:
		return "UEMA"
	case MeasureDTW:
		return "DTW"
	case MeasureDUST:
		return "DUST"
	case MeasurePROUD:
		return "PROUD"
	case MeasureMUNICH:
		return "MUNICH"
	default:
		return fmt.Sprintf("Measure(%d)", int(m))
	}
}

// Probabilistic reports whether the measure answers probabilistic threshold
// queries (ProbRange/ProbTopK) rather than distance queries (TopK/Range).
func (m Measure) Probabilistic() bool {
	return m == MeasurePROUD || m == MeasureMUNICH
}

// ParseMeasure resolves a case-insensitive measure name ("euclidean",
// "uma", "uema", "dtw", "dust", "proud", "munich"). Failure wraps
// qerr.ErrUnknownMeasure.
func ParseMeasure(name string) (Measure, error) {
	for _, m := range Measures() {
		if strings.EqualFold(name, m.String()) {
			return m, nil
		}
	}
	return 0, fmt.Errorf("engine: %w: %q (want euclidean, uma, uema, dtw, dust, proud or munich)", qerr.ErrUnknownMeasure, name)
}

// Options configures an Engine.
type Options struct {
	// Measure selects the similarity measure (default Euclidean).
	Measure Measure
	// Band is the Sakoe-Chiba half-width for MeasureDTW. Zero derives
	// max(1, n/10) from the series length n (the usual warping-window
	// heuristic); negative means unconstrained warping.
	Band int
	// W is the filter window half-width for UMA/UEMA (0 = the paper's 2).
	W int
	// Lambda is the UEMA decay (0 = the paper's 1).
	Lambda float64
	// Mode selects the Eq. 17/18 weight normalisation for UMA/UEMA.
	Mode timeseries.WeightMode
	// Workers bounds the executor's parallelism (0 = GOMAXPROCS). A
	// PreparedQuery can override it per request.
	Workers int
	// ShardSize is the number of candidates per work shard (0 = 64).
	ShardSize int
	// NoPrune disables every pruning device, forcing the naive full scan.
	// It exists as the reference arm of the engine benchmarks and tests.
	// It implies NoIndex.
	NoPrune bool
	// NoIndex disables the sketch bucket index, forcing the linear sharded
	// scan (the per-candidate pruning devices still run). The index is a
	// sound prefilter, so results are bit-identical either way.
	NoIndex bool
	// IndexThreshold is the minimum snapshot size at which the sketch
	// bucket index engages (0 = 1024; negative = always, which the parity
	// tests use). Below it the linear scan beats the bucket bookkeeping.
	IndexThreshold int
	// DUST configures the shared evaluator for MeasureDUST.
	DUST dust.Options
	// Segments is the envelope segment count of the MUNICH filter index
	// (0 = 16, clamped to the series length).
	Segments int
	// MUNICH configures the probability estimator MeasureMUNICH refines
	// with; it must match the options of any naive scan being compared
	// against.
	MUNICH munich.Options
}

// Stats counts the engine's work since construction (or the last
// ResetStats). The accounting identity Candidates = Completed +
// AbandonedEarly + PrunedByEnvelope + ResolvedByBounds + ResolvedEarly
// always holds; Candidates - Completed is the work pruning saved.
type Stats struct {
	// Candidates is the number of query-candidate pairs examined.
	Candidates int64 `json:"candidates"`
	// Completed is the number of full distance computations (or, for the
	// probabilistic measures, full probability refines) that ran to
	// completion — the figure pruning exists to minimise.
	Completed int64 `json:"completed"`
	// AbandonedEarly counts scans abandoned mid-accumulation.
	AbandonedEarly int64 `json:"abandoned_early"`
	// PrunedByEnvelope counts candidates excluded by an envelope lower
	// bound alone: LB_Keogh for DTW, the segment-envelope filter for
	// MUNICH. Neither touches the underlying kernel.
	PrunedByEnvelope int64 `json:"pruned_by_envelope"`
	// ResolvedByBounds counts MUNICH candidates whose probabilistic
	// predicate was decided by the bounding-interval or sample-pair bounds
	// without the full combination-counting refine.
	ResolvedByBounds int64 `json:"resolved_by_bounds"`
	// ResolvedEarly counts PROUD candidates whose predicate was decided by
	// the sound prefix bounds after only a prefix of timestamps.
	ResolvedEarly int64 `json:"resolved_early"`
	// BucketsVisited and BucketsPruned count sketch-index bucket decisions:
	// a pruned bucket's members were never candidates at all. Zero on
	// engines running the linear scan.
	BucketsVisited int64 `json:"buckets_visited"`
	BucketsPruned  int64 `json:"buckets_pruned"`
	// SeriesSkippedByIndex counts candidates never examined because their
	// whole bucket was excluded by its index bound (excluding the query
	// series itself). For index queries, Candidates + SeriesSkippedByIndex
	// = queries * (N - 1).
	SeriesSkippedByIndex int64 `json:"series_skipped_by_index"`
}

// Merge returns the field-wise sum of two stats — the aggregation the
// server uses to keep cumulative accounting across engine rebuilds.
func (s Stats) Merge(o Stats) Stats {
	return Stats{
		Candidates:       s.Candidates + o.Candidates,
		Completed:        s.Completed + o.Completed,
		AbandonedEarly:   s.AbandonedEarly + o.AbandonedEarly,
		PrunedByEnvelope: s.PrunedByEnvelope + o.PrunedByEnvelope,
		ResolvedByBounds: s.ResolvedByBounds + o.ResolvedByBounds,
		ResolvedEarly:    s.ResolvedEarly + o.ResolvedEarly,

		BucketsVisited:       s.BucketsVisited + o.BucketsVisited,
		BucketsPruned:        s.BucketsPruned + o.BucketsPruned,
		SeriesSkippedByIndex: s.SeriesSkippedByIndex + o.SeriesSkippedByIndex,
	}
}

// Pruned returns the number of candidates that never paid for a full
// computation (the accounting identity's complement of Completed).
func (s Stats) Pruned() int64 { return s.Candidates - s.Completed }

// String renders the counters in the one-line form the CLI and the /stats
// endpoint report.
func (s Stats) String() string {
	pct := 0.0
	if s.Candidates > 0 {
		pct = 100 * float64(s.Pruned()) / float64(s.Candidates)
	}
	line := fmt.Sprintf("%d candidates, %d completed, %d abandoned early, %d envelope-pruned, %d resolved by bounds, %d resolved on a prefix (%.1f%% of the scan skipped)",
		s.Candidates, s.Completed, s.AbandonedEarly, s.PrunedByEnvelope, s.ResolvedByBounds, s.ResolvedEarly, pct)
	if s.BucketsVisited > 0 || s.BucketsPruned > 0 {
		line += fmt.Sprintf("; index: %d buckets visited, %d pruned, %d series skipped",
			s.BucketsVisited, s.BucketsPruned, s.SeriesSkippedByIndex)
	}
	return line
}

// Engine answers pruned top-k and range similarity queries over one corpus
// snapshot. It is safe for concurrent use; all methods see the snapshot's
// frozen state regardless of later corpus mutations.
type Engine struct {
	snap *corpus.Snapshot
	opts Options
	band int

	vecs         rows              // scanned vectors (observations or filtered)
	upper, lower rows              // per-series LB_Keogh envelopes (DTW only)
	dust         *dust.Dust        // shared evaluator (DUST only)
	varD         float64           // per-timestamp D_i variance sum (PROUD only)
	suffix       rows              // per-series suffix energies (PROUD only)
	envs         []munich.Envelope // per-series segment envelopes (MUNICH only)
	spans        [][2]int          // MUNICH segment geometry
	segments     int               // resolved MUNICH segment count

	// idx is the engine's view of the snapshot's sketch index; nil when
	// queries run the linear sharded scan (see resolveIndex).
	idx *engineIndex

	candidates     atomic.Int64
	completed      atomic.Int64
	abandoned      atomic.Int64
	pruned         atomic.Int64
	resolvedBounds atomic.Int64
	resolvedEarly  atomic.Int64
	bucketsVisited atomic.Int64
	bucketsPruned  atomic.Int64
	seriesSkipped  atomic.Int64
}

// New builds an engine over a prepared workload — a thin wrapper around
// NewFromSnapshot on the workload's corpus snapshot.
func New(w *core.Workload, opts Options) (*Engine, error) {
	if w == nil || w.Len() == 0 {
		return nil, errors.New("engine: nil or empty workload")
	}
	return NewFromSnapshot(w.Snapshot(), opts)
}

// NewFromSnapshot builds an engine over a corpus snapshot, reusing the
// snapshot's precomputed per-series artifacts whenever the engine options
// match the corpus geometry (the common case: zero-value options adopt the
// corpus defaults) and deriving them locally otherwise.
func NewFromSnapshot(snap *corpus.Snapshot, opts Options) (*Engine, error) {
	if snap == nil || snap.Len() == 0 {
		return nil, errors.New("engine: nil or empty snapshot")
	}
	cfg := snap.Config()
	if opts.W == 0 {
		opts.W = cfg.W
	}
	if opts.Lambda == 0 {
		opts.Lambda = cfg.Lambda
	}
	if opts.ShardSize <= 0 {
		opts.ShardSize = 64
	}
	e := &Engine{snap: snap, opts: opts}
	n := snap.SeriesLen()
	cols, dense := snap.Columns()
	filterReuse := false

	switch opts.Measure {
	case MeasureEuclidean:
		e.vecs = observations(snap)
	case MeasureUMA, MeasureUEMA:
		reuse := opts.W == cfg.W && opts.Mode == cfg.Mode &&
			//lint:allow floatcmp artifact reuse requires the bit-identical filter config; a near-miss must recompute
			(opts.Measure == MeasureUMA || opts.Lambda == cfg.Lambda)
		filterReuse = reuse
		if reuse && dense {
			if opts.Measure == MeasureUMA {
				e.vecs = matRows(cols.UMA)
			} else {
				e.vecs = matRows(cols.UEMA)
			}
			break
		}
		vecs := make([][]float64, snap.Len())
		for i := 0; i < snap.Len(); i++ {
			ent := snap.Entry(i)
			if reuse {
				if opts.Measure == MeasureUMA {
					vecs[i] = ent.UMA
				} else {
					vecs[i] = ent.UEMA
				}
				continue
			}
			var f []float64
			var err error
			if opts.Measure == MeasureUMA {
				f, err = timeseries.UncertainMovingAverage(ent.PDF.Observations, ent.Sigmas, opts.W, opts.Mode)
			} else {
				f, err = timeseries.UncertainExponentialMovingAverage(ent.PDF.Observations, ent.Sigmas, opts.W, opts.Lambda, opts.Mode)
			}
			if err != nil {
				return nil, fmt.Errorf("engine: filtering series %d: %w", ent.ID, err)
			}
			vecs[i] = f
		}
		e.vecs = viewRows(vecs)
	case MeasureDTW:
		e.vecs = observations(snap)
		e.band = opts.Band
		if e.band == 0 {
			e.band = n / 10
			if e.band < 1 {
				e.band = 1
			}
		}
		if e.band == cfg.Band && dense {
			e.upper, e.lower = matRows(cols.Upper), matRows(cols.Lower)
			break
		}
		upper := make([][]float64, snap.Len())
		lower := make([][]float64, snap.Len())
		for i := 0; i < snap.Len(); i++ {
			if ent := snap.Entry(i); e.band == cfg.Band {
				upper[i], lower[i] = ent.Upper, ent.Lower
			} else {
				upper[i], lower[i] = distance.Envelope(e.vecs.at(i), e.band)
			}
		}
		e.upper, e.lower = viewRows(upper), viewRows(lower)
	case MeasureDUST:
		if opts.DUST == cfg.DUST {
			e.dust = snap.Dust()
		} else {
			e.dust = dust.New(opts.DUST)
		}
	case MeasurePROUD:
		e.vecs = observations(snap)
		// The same arithmetic the naive matcher feeds proud.Distance with
		// (QuerySigma and CandSigma both the snapshot's reported sigma).
		sigma := snap.ReportedSigma()
		e.varD = sigma*sigma + sigma*sigma
		if dense {
			e.suffix = matRows(cols.Suffix)
		} else {
			suffix := make([][]float64, snap.Len())
			for i := 0; i < snap.Len(); i++ {
				suffix[i] = snap.Entry(i).Suffix
			}
			e.suffix = viewRows(suffix)
		}
	case MeasureMUNICH:
		if !snap.HasSamples() {
			return nil, errors.New("engine: MeasureMUNICH requires every resident series to carry a sample model (SamplesPerTS > 0)")
		}
		e.segments = opts.Segments
		if e.segments <= 0 {
			e.segments = 16
		}
		e.segments = munich.ClampSegments(n, e.segments)
		e.envs = make([]munich.Envelope, snap.Len())
		if e.segments == cfg.Segments {
			e.spans = snap.Spans()
			for i := 0; i < snap.Len(); i++ {
				e.envs[i] = snap.Entry(i).Env
			}
		} else {
			e.spans = munich.SegmentSpans(n, e.segments)
			for i := 0; i < snap.Len(); i++ {
				e.envs[i] = munich.BuildEnvelope(*snap.Entry(i).Samples, e.segments)
			}
		}
	default:
		return nil, fmt.Errorf("engine: %w: %v", qerr.ErrUnknownMeasure, opts.Measure)
	}
	e.resolveIndex(cfg, dense, filterReuse)
	return e, nil
}

func observations(snap *corpus.Snapshot) rows {
	if cols, ok := snap.Columns(); ok {
		return matRows(cols.Values)
	}
	out := make([][]float64, snap.Len())
	for i := range out {
		out[i] = snap.Entry(i).PDF.Observations
	}
	return viewRows(out)
}

// Measure reports the measure the engine was built for.
func (e *Engine) Measure() Measure { return e.opts.Measure }

// Snapshot returns the corpus snapshot the engine serves.
func (e *Engine) Snapshot() *corpus.Snapshot { return e.snap }

// Stats returns a snapshot of the work counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Candidates:       e.candidates.Load(),
		Completed:        e.completed.Load(),
		AbandonedEarly:   e.abandoned.Load(),
		PrunedByEnvelope: e.pruned.Load(),
		ResolvedByBounds: e.resolvedBounds.Load(),
		ResolvedEarly:    e.resolvedEarly.Load(),

		BucketsVisited:       e.bucketsVisited.Load(),
		BucketsPruned:        e.bucketsPruned.Load(),
		SeriesSkippedByIndex: e.seriesSkipped.Load(),
	}
}

// ResetStats zeroes the work counters.
func (e *Engine) ResetStats() {
	e.candidates.Store(0)
	e.completed.Store(0)
	e.abandoned.Store(0)
	e.pruned.Store(0)
	e.resolvedBounds.Store(0)
	e.resolvedEarly.Store(0)
	e.bucketsVisited.Store(0)
	e.bucketsPruned.Store(0)
	e.seriesSkipped.Store(0)
}

// uncount retracts a candidate that will never resolve — a cancelled or
// failed computation — so the Stats accounting identity (Candidates equals
// the sum of the resolution counters) holds even for queries stopped by
// their context.
func (e *Engine) uncount() { e.candidates.Add(-1) }

// distPruned evaluates the measure's distance between a prepared query and
// candidate ci under a cutoff in squared-distance space. It returns the
// exact distance and true when the computation completed (which implies
// dist^2 <= cutoff2); a false return means the candidate was excluded by a
// lower bound or abandoned mid-scan and cannot have distance <= the
// distance whose square the cutoff came from. done (nil = never) threads
// cooperative cancellation into the one kernel long enough to need
// mid-candidate polling, the DTW row loop. scratch (nil = allocate) lends
// the DTW kernel its DP rows; workers keep one per work loop so the hot
// path allocates nothing per candidate.
func (e *Engine) distPruned(pq *PreparedQuery, ci int, cutoff2 float64, done <-chan struct{}, scratch *distance.DTWScratch) (float64, bool, error) {
	e.candidates.Add(1)
	if e.opts.NoPrune {
		cutoff2 = math.Inf(1)
	}
	switch e.opts.Measure {
	case MeasureEuclidean, MeasureUMA, MeasureUEMA:
		d2, complete, err := distance.SquaredEuclideanEarlyAbandon(pq.vec, e.vecs.at(ci), cutoff2)
		if err != nil {
			e.uncount()
			return 0, false, err
		}
		if !complete {
			e.abandoned.Add(1)
			return 0, false, nil
		}
		e.completed.Add(1)
		return math.Sqrt(d2), true, nil
	case MeasureDTW:
		// Tiered prune cascade, cheapest first: the O(1) LB_Kim endpoint
		// bound, then the O(n) LB_Keogh envelope bound, then the
		// early-abandoning DP itself. Every tier is a sound lower bound on
		// DTW^2, so a candidate any tier excludes could never have completed
		// under the cutoff — results are identical, only cheaper.
		if distance.LBKimSquared(pq.vec, e.vecs.at(ci)) > cutoff2 {
			e.pruned.Add(1)
			return 0, false, nil
		}
		lb, err := distance.LBKeoghSquared(pq.vec, e.upper.at(ci), e.lower.at(ci), cutoff2)
		if err != nil {
			e.uncount()
			return 0, false, err
		}
		if lb > cutoff2 {
			e.pruned.Add(1)
			return 0, false, nil
		}
		d, complete, err := distance.DTWBandEarlyAbandonScratch(pq.vec, e.vecs.at(ci), e.band, cutoff2, done, scratch)
		if err != nil {
			e.uncount()
			return 0, false, err
		}
		if !complete {
			e.abandoned.Add(1)
			return 0, false, nil
		}
		e.completed.Add(1)
		return d, true, nil
	case MeasureDUST:
		d, complete, err := e.dust.DistanceEarlyAbandon(pq.pdf, e.snap.Entry(ci).PDF, cutoff2)
		if err != nil {
			e.uncount()
			return 0, false, err
		}
		if !complete {
			e.abandoned.Add(1)
			return 0, false, nil
		}
		e.completed.Add(1)
		return d, true, nil
	case MeasurePROUD, MeasureMUNICH:
		e.uncount()
		return 0, false, qerr.BadRequestf("engine: measure %v defines match probabilities, not distances (use ProbRange/ProbTopK)", e.opts.Measure)
	default:
		e.uncount()
		return 0, false, fmt.Errorf("engine: %w: %v", qerr.ErrUnknownMeasure, e.opts.Measure)
	}
}

// Distance returns the measure's exact distance between two series of the
// snapshot (no pruning) — the reference the pruned paths must agree with.
func (e *Engine) Distance(qi, ci int) (float64, error) {
	if err := e.checkIndex(ci); err != nil {
		return 0, err
	}
	pq, err := e.PrepareIndex(qi)
	if err != nil {
		return 0, err
	}
	d, _, err := e.distPruned(pq, ci, math.Inf(1), nil, nil)
	return d, err
}

func (e *Engine) checkIndex(i int) error {
	if i < 0 || i >= e.snap.Len() {
		return fmt.Errorf("engine: %w", qerr.BadRequestf("series index %d outside [0, %d)", i, e.snap.Len()))
	}
	return nil
}

// workersFor resolves the worker budget for a batch of prepared queries:
// the largest per-query override, falling back to the engine default.
func (e *Engine) workersFor(pqs []*PreparedQuery) int {
	workers := 0
	for _, pq := range pqs {
		if pq.Workers > workers {
			workers = pq.Workers
		}
	}
	if workers == 0 {
		workers = e.opts.Workers
	}
	return workers
}

// sharedBound is a monotonically decreasing float64 shared across the
// workers of one query: the tightest proven upper bound on the k-th best
// squared distance.
type sharedBound struct{ bits atomic.Uint64 }

func newSharedBound() *sharedBound {
	b := &sharedBound{}
	b.bits.Store(math.Float64bits(math.Inf(1)))
	return b
}

func (b *sharedBound) get() float64 { return math.Float64frombits(b.bits.Load()) }

// lower publishes v if it improves (decreases) the bound.
func (b *sharedBound) lower(v float64) {
	for {
		old := b.bits.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if b.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// kHeap is a bounded max-heap over distances: it retains the k smallest
// values seen and exposes the current k-th best as the pruning bound.
type kHeap struct {
	k  int
	ds []float64
}

func newKHeap(k int) *kHeap { return &kHeap{k: k, ds: make([]float64, 0, k)} }

func (h *kHeap) full() bool { return len(h.ds) >= h.k }

// top returns the largest retained distance (only meaningful when full).
func (h *kHeap) top() float64 { return h.ds[0] }

func (h *kHeap) push(d float64) {
	if len(h.ds) < h.k {
		h.ds = append(h.ds, d)
		// sift up
		i := len(h.ds) - 1
		for i > 0 {
			p := (i - 1) / 2
			if h.ds[p] >= h.ds[i] {
				break
			}
			h.ds[p], h.ds[i] = h.ds[i], h.ds[p]
			i = p
		}
		return
	}
	if d >= h.ds[0] {
		return
	}
	h.ds[0] = d
	// sift down
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < len(h.ds) && h.ds[l] > h.ds[big] {
			big = l
		}
		if r < len(h.ds) && h.ds[r] > h.ds[big] {
			big = r
		}
		if big == i {
			return
		}
		h.ds[i], h.ds[big] = h.ds[big], h.ds[i]
		i = big
	}
}

// ulpUp inflates a squared bound by a few ulps so the sqrt-then-square
// round-trip (distances are stored as sqrt, bounds as squares) can never
// exclude a candidate that ties the k-th best exactly. The relative 1e-15
// margin is ~4 ulps — far above the round-trip error, far below any real
// distance gap — and costs no measurable pruning. A relative margin
// vanishes at v = 0 (exact-duplicate series), where ties would survive only
// because every kernel happens to compare with strict >; the absolute floor
// keeps a zero cutoff strictly above every distance that ties it.
func ulpUp(v float64) float64 {
	if v := v + v*1e-15; v > 0 {
		return v
	}
	return math.SmallestNonzeroFloat64
}

// TopK returns the k nearest neighbours of query qi under the engine's
// measure, excluding qi itself, sorted by ascending distance with ties
// broken by ID — exactly what a naive full scan (query.TopK over the exact
// distance) returns.
//
// Legacy surface: TopK is a thin wrapper over Run with a background
// context. New callers should build a Request and call Run directly, which
// additionally offers cancellation, deadlines and pagination.
func (e *Engine) TopK(qi, k int) ([]query.Neighbor, error) {
	res, err := e.Run(context.Background(), Request{Measure: e.opts.Measure, Kind: KindTopK, Index: &qi, K: k})
	if err != nil {
		return nil, err
	}
	return res.Neighbors, nil
}

// TopKBatch answers the top-k query for every query index in one batched,
// sharded, work-stealing pass. Results are per-query, in input order, and
// identical to running TopK on each query alone — or to the naive scan —
// for every worker count.
//
// Legacy surface: the batch methods remain the direct execution path (one
// executor pass shared by the whole batch); Run serves the same answers
// one request at a time with cancellation.
func (e *Engine) TopKBatch(queries []int, k int) ([][]query.Neighbor, error) {
	pqs, err := e.prepareIndexBatch(queries)
	if err != nil {
		return nil, err
	}
	return e.TopKPrepared(pqs, k)
}

// TopKPrepared answers the top-k query for every prepared query in one
// batched, sharded, work-stealing pass.
func (e *Engine) TopKPrepared(pqs []*PreparedQuery, k int) ([][]query.Neighbor, error) {
	return e.topKPrepared(context.Background(), pqs, k)
}

// topKPrepared is the top-k execution core: sharded scan under a context,
// polled at every (query, shard) work item and inside the DTW kernel.
func (e *Engine) topKPrepared(ctx context.Context, pqs []*PreparedQuery, k int) ([][]query.Neighbor, error) {
	if k < 1 {
		return nil, fmt.Errorf("engine: %w", qerr.BadRequestf("k = %d must be at least 1", k))
	}
	if err := e.checkPrepared(pqs); err != nil {
		return nil, err
	}
	if e.idx != nil {
		return e.topKIndexed(ctx, pqs, k)
	}
	n := e.snap.Len()
	shardSize := e.opts.ShardSize
	numShards := (n + shardSize - 1) / shardSize
	done := ctx.Done()

	bounds := make([]*sharedBound, len(pqs))
	for i := range bounds {
		bounds[i] = pqs[i].boundRef()
	}
	// One retained-candidate bucket per (query, shard) pair; written by
	// exactly one worker each, merged after the barrier.
	buckets := make([][]query.Neighbor, len(pqs)*numShards)

	err := core.RunShardedCtx(ctx, len(pqs)*numShards, 1, e.workersFor(pqs), func(lo, hi int) error {
		var scratch distance.DTWScratch // one DP-row pair per work batch, not per candidate
		for item := lo; item < hi; item++ {
			q, shard := item/numShards, item%numShards
			pq := pqs[q]
			cLo, cHi := shard*shardSize, (shard+1)*shardSize
			if cHi > n {
				cHi = n
			}
			local := newKHeap(k)
			var kept []query.Neighbor
			for ci := cLo; ci < cHi; ci++ {
				if ci == pq.self {
					continue
				}
				cut := bounds[q].get()
				if local.full() {
					if t := ulpUp(local.top() * local.top()); t < cut {
						cut = t
					}
				}
				d, ok, err := e.distPruned(pq, ci, cut, done, &scratch)
				if err != nil {
					return fmt.Errorf("engine: query %d candidate %d: %w", q, ci, err)
				}
				if !ok {
					continue
				}
				kept = append(kept, query.Neighbor{ID: ci, Distance: d})
				local.push(d)
				if local.full() {
					bounds[q].lower(ulpUp(local.top() * local.top()))
				}
			}
			buckets[item] = kept
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	out := make([][]query.Neighbor, len(pqs))
	for q := range pqs {
		var all []query.Neighbor
		for shard := 0; shard < numShards; shard++ {
			all = append(all, buckets[q*numShards+shard]...)
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].Distance != all[j].Distance {
				return all[i].Distance < all[j].Distance
			}
			return all[i].ID < all[j].ID
		})
		if k < len(all) {
			all = all[:k]
		}
		out[q] = all
	}
	return out, nil
}

// Range returns the IDs of every series within eps of query qi under the
// engine's measure, excluding qi, in ascending ID order — identical to
// query.RangeQueryFunc over the exact distance.
//
// Legacy surface: Range is a thin wrapper over Run with a background
// context.
func (e *Engine) Range(qi int, eps float64) ([]int, error) {
	res, err := e.Run(context.Background(), Request{Measure: e.opts.Measure, Kind: KindRange, Index: &qi, Eps: eps})
	if err != nil {
		return nil, err
	}
	return res.IDs, nil
}

// rangePrepared is the execution core of Range for one prepared query.
// emit (nil = none) is invoked for every confirmed match as its shard
// completes — shard order, hence emission order, is nondeterministic under
// parallelism; the returned slice is always in ascending position order. A
// non-nil emit error aborts the scan.
func (e *Engine) rangePrepared(ctx context.Context, pq *PreparedQuery, eps float64, emit func(id int, dist float64) error) ([]int, error) {
	if err := e.checkPrepared([]*PreparedQuery{pq}); err != nil {
		return nil, err
	}
	if math.IsNaN(eps) || eps < 0 {
		return nil, fmt.Errorf("engine: %w", qerr.BadRequestf("eps = %v must be non-negative", eps))
	}
	if e.idx != nil {
		return e.rangeIndexed(ctx, pq, eps, emit)
	}
	n := e.snap.Len()
	shardSize := e.opts.ShardSize
	numShards := (n + shardSize - 1) / shardSize
	cutoff2 := ulpUp(eps * eps)
	done := ctx.Done()

	buckets := make([][]int, numShards)
	err := core.RunShardedCtx(ctx, numShards, 1, e.workersFor([]*PreparedQuery{pq}), func(lo, hi int) error {
		var scratch distance.DTWScratch // one DP-row pair per work batch, not per candidate
		for shard := lo; shard < hi; shard++ {
			cLo, cHi := shard*shardSize, (shard+1)*shardSize
			if cHi > n {
				cHi = n
			}
			var ids []int
			for ci := cLo; ci < cHi; ci++ {
				if ci == pq.self {
					continue
				}
				d, ok, err := e.distPruned(pq, ci, cutoff2, done, &scratch)
				if err != nil {
					return fmt.Errorf("engine: candidate %d: %w", ci, err)
				}
				if ok && d <= eps {
					ids = append(ids, ci)
					if emit != nil {
						if err := emit(ci, d); err != nil {
							return err
						}
					}
				}
			}
			buckets[shard] = ids
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []int
	for _, ids := range buckets {
		out = append(out, ids...)
	}
	return out, nil
}
