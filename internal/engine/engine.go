// Package engine is the query-serving layer of the reproduction: a top-k /
// range similarity engine that sits above the matchers of internal/core and
// prunes aggressively before any work reaches the hot distance kernels.
//
// Pruning devices, one family per measure:
//
//   - lock-step measures (Euclidean, UMA, UEMA over the filtered series)
//     early-abandon the squared-distance accumulation once the running sum
//     exceeds the current k-th best;
//   - banded DTW first checks the LB_Keogh envelope lower bound and only
//     runs the DP — itself early-abandoning per row — when the bound cannot
//     exclude the candidate;
//   - DUST early-abandons the Equation 13 accumulation and shares a single
//     evaluator, and therefore a single set of phi lookup tables, across
//     every query of a batch;
//   - MUNICH (probabilistic queries) walks a segment-envelope lower bound,
//     the exact bounding-interval prune and (when the refine is exact) a
//     per-timestamp sample-pair probability bound; surviving candidates
//     pay for a refine step that abandons early in the estimator's own
//     arithmetic;
//   - PROUD (probabilistic queries) accumulates the distance moments over a
//     prefix of timestamps and stops as soon as the sound prefix bounds
//     (Stream.earlyDecision's machinery plus suffix-energy gap bounds)
//     force the predicate outcome.
//
// Execution is batched and sharded: the candidate space of every query is
// cut into shards and the (query, shard) pairs are drained by the chunked
// work-stealing executor of internal/core (RunSharded). Workers cooperate
// through a per-query atomic bound — the best k-th distance any shard has
// proven so far — which tightens pruning across shard boundaries while
// staying exact: a published bound is always the k-th best of a subset of
// candidates, hence an upper bound on the true k-th distance, so a
// candidate abandoned against it can never belong to the answer. Results
// are therefore bit-identical to the naive full scan for every worker
// count, which the tests assert.
package engine

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"uncertts/internal/core"
	"uncertts/internal/distance"
	"uncertts/internal/dust"
	"uncertts/internal/munich"
	"uncertts/internal/proud"
	"uncertts/internal/query"
	"uncertts/internal/timeseries"
)

// Measure selects the similarity measure the engine serves.
type Measure int

const (
	// MeasureEuclidean scans the perturbed observations with plain
	// Euclidean distance (the Section 4.1.2 baseline).
	MeasureEuclidean Measure = iota
	// MeasureUMA scans UMA-filtered series (Eq. 17) with Euclidean
	// distance.
	MeasureUMA
	// MeasureUEMA scans UEMA-filtered series (Eq. 18) with Euclidean
	// distance.
	MeasureUEMA
	// MeasureDTW scans the perturbed observations with Sakoe-Chiba banded
	// DTW, pruned by LB_Keogh.
	MeasureDTW
	// MeasureDUST scans with the DUST dissimilarity (Equation 13), sharing
	// one set of phi tables across the batch.
	MeasureDUST
	// MeasurePROUD serves probabilistic threshold queries (ProbRange,
	// ProbTopK) with PROUD's normal approximation of the squared distance
	// over the perturbed observations, pruned by sound prefix bounds.
	MeasurePROUD
	// MeasureMUNICH serves probabilistic threshold queries over the
	// repeated-observation model (the workload must be built with
	// SamplesPerTS > 0), pruned by envelope and bounding-interval bounds
	// before any combination counting.
	MeasureMUNICH
)

// String names the measure.
func (m Measure) String() string {
	switch m {
	case MeasureEuclidean:
		return "Euclidean"
	case MeasureUMA:
		return "UMA"
	case MeasureUEMA:
		return "UEMA"
	case MeasureDTW:
		return "DTW"
	case MeasureDUST:
		return "DUST"
	case MeasurePROUD:
		return "PROUD"
	case MeasureMUNICH:
		return "MUNICH"
	default:
		return fmt.Sprintf("Measure(%d)", int(m))
	}
}

// Options configures an Engine.
type Options struct {
	// Measure selects the similarity measure (default Euclidean).
	Measure Measure
	// Band is the Sakoe-Chiba half-width for MeasureDTW. Zero derives
	// max(1, n/10) from the series length n (the usual warping-window
	// heuristic); negative means unconstrained warping.
	Band int
	// W is the filter window half-width for UMA/UEMA (0 = the paper's 2).
	W int
	// Lambda is the UEMA decay (0 = the paper's 1).
	Lambda float64
	// Mode selects the Eq. 17/18 weight normalisation for UMA/UEMA.
	Mode timeseries.WeightMode
	// Workers bounds the executor's parallelism (0 = GOMAXPROCS).
	Workers int
	// ShardSize is the number of candidates per work shard (0 = 64).
	ShardSize int
	// NoPrune disables every pruning device, forcing the naive full scan.
	// It exists as the reference arm of the engine benchmarks and tests.
	NoPrune bool
	// DUST configures the shared evaluator for MeasureDUST.
	DUST dust.Options
	// Segments is the envelope segment count of the MUNICH filter index
	// (0 = 16, clamped to the series length).
	Segments int
	// MUNICH configures the probability estimator MeasureMUNICH refines
	// with; it must match the options of any naive scan being compared
	// against.
	MUNICH munich.Options
}

// Stats counts the engine's work since construction (or the last
// ResetStats). The accounting identity Candidates = Completed +
// AbandonedEarly + PrunedByEnvelope + ResolvedByBounds + ResolvedEarly
// always holds; Candidates - Completed is the work pruning saved.
type Stats struct {
	// Candidates is the number of query-candidate pairs examined.
	Candidates int64
	// Completed is the number of full distance computations (or, for the
	// probabilistic measures, full probability refines) that ran to
	// completion — the figure pruning exists to minimise.
	Completed int64
	// AbandonedEarly counts scans abandoned mid-accumulation.
	AbandonedEarly int64
	// PrunedByEnvelope counts candidates excluded by an envelope lower
	// bound alone: LB_Keogh for DTW, the segment-envelope filter for
	// MUNICH. Neither touches the underlying kernel.
	PrunedByEnvelope int64
	// ResolvedByBounds counts MUNICH candidates whose probabilistic
	// predicate was decided by the bounding-interval or sample-pair bounds
	// without the full combination-counting refine.
	ResolvedByBounds int64
	// ResolvedEarly counts PROUD candidates whose predicate was decided by
	// the sound prefix bounds after only a prefix of timestamps.
	ResolvedEarly int64
}

// Engine answers pruned top-k and range similarity queries over a prepared
// workload. It is safe for concurrent use.
type Engine struct {
	w    *core.Workload
	opts Options
	band int

	vecs         [][]float64   // scanned vectors (observations or filtered)
	upper, lower [][]float64   // per-series LB_Keogh envelopes (DTW only)
	dust         *dust.Dust    // shared evaluator (DUST only)
	varD         float64       // per-timestamp D_i variance sum (PROUD only)
	suffix       [][]float64   // per-series suffix energies (PROUD only)
	mIndex       *munich.Index // segment-envelope filter index (MUNICH only)

	candidates     atomic.Int64
	completed      atomic.Int64
	abandoned      atomic.Int64
	pruned         atomic.Int64
	resolvedBounds atomic.Int64
	resolvedEarly  atomic.Int64
}

// New builds an engine over the workload, precomputing the per-measure
// derived representation: filtered series for UMA/UEMA, envelopes for DTW,
// the shared evaluator for DUST.
func New(w *core.Workload, opts Options) (*Engine, error) {
	if w == nil || w.Len() == 0 {
		return nil, errors.New("engine: nil or empty workload")
	}
	if opts.W == 0 {
		opts.W = 2
	}
	if opts.Lambda == 0 {
		opts.Lambda = 1
	}
	if opts.ShardSize <= 0 {
		opts.ShardSize = 64
	}
	e := &Engine{w: w, opts: opts}
	n := w.SeriesLen()

	switch opts.Measure {
	case MeasureEuclidean:
		e.vecs = observations(w)
	case MeasureUMA, MeasureUEMA:
		e.vecs = make([][]float64, w.Len())
		for i, ps := range w.PDF {
			var f []float64
			var err error
			if opts.Measure == MeasureUMA {
				f, err = timeseries.UncertainMovingAverage(ps.Observations, w.Sigmas, opts.W, opts.Mode)
			} else {
				f, err = timeseries.UncertainExponentialMovingAverage(ps.Observations, w.Sigmas, opts.W, opts.Lambda, opts.Mode)
			}
			if err != nil {
				return nil, fmt.Errorf("engine: filtering series %d: %w", ps.ID, err)
			}
			e.vecs[i] = f
		}
	case MeasureDTW:
		e.vecs = observations(w)
		e.band = opts.Band
		if e.band == 0 {
			e.band = n / 10
			if e.band < 1 {
				e.band = 1
			}
		}
		e.upper = make([][]float64, w.Len())
		e.lower = make([][]float64, w.Len())
		for i, v := range e.vecs {
			e.upper[i], e.lower[i] = distance.Envelope(v, e.band)
		}
	case MeasureDUST:
		e.dust = dust.New(opts.DUST)
	case MeasurePROUD:
		e.vecs = observations(w)
		// The same arithmetic the naive matcher feeds proud.Distance with
		// (QuerySigma and CandSigma both the workload's reported sigma).
		sigma := w.ReportedSigma
		e.varD = sigma*sigma + sigma*sigma
		e.suffix = make([][]float64, w.Len())
		for i, v := range e.vecs {
			e.suffix[i] = proud.SuffixEnergy(v)
		}
	case MeasureMUNICH:
		if w.Samples == nil {
			return nil, errors.New("engine: MeasureMUNICH requires a workload with SamplesPerTS > 0")
		}
		segments := opts.Segments
		if segments <= 0 {
			segments = 16
		}
		idx, err := munich.NewIndex(w.Samples, segments)
		if err != nil {
			return nil, fmt.Errorf("engine: building MUNICH filter index: %w", err)
		}
		e.mIndex = idx
	default:
		return nil, fmt.Errorf("engine: unknown measure %v", opts.Measure)
	}
	return e, nil
}

func observations(w *core.Workload) [][]float64 {
	out := make([][]float64, w.Len())
	for i, ps := range w.PDF {
		out[i] = ps.Observations
	}
	return out
}

// Measure reports the measure the engine was built for.
func (e *Engine) Measure() Measure { return e.opts.Measure }

// Stats returns a snapshot of the work counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Candidates:       e.candidates.Load(),
		Completed:        e.completed.Load(),
		AbandonedEarly:   e.abandoned.Load(),
		PrunedByEnvelope: e.pruned.Load(),
		ResolvedByBounds: e.resolvedBounds.Load(),
		ResolvedEarly:    e.resolvedEarly.Load(),
	}
}

// ResetStats zeroes the work counters.
func (e *Engine) ResetStats() {
	e.candidates.Store(0)
	e.completed.Store(0)
	e.abandoned.Store(0)
	e.pruned.Store(0)
	e.resolvedBounds.Store(0)
	e.resolvedEarly.Store(0)
}

// distPruned evaluates the measure's distance between query qi and
// candidate ci under a cutoff in squared-distance space. It returns the
// exact distance and true when the computation completed (which implies
// dist^2 <= cutoff2); a false return means the candidate was excluded by a
// lower bound or abandoned mid-scan and cannot have distance <= the
// distance whose square the cutoff came from.
func (e *Engine) distPruned(qi, ci int, cutoff2 float64) (float64, bool, error) {
	e.candidates.Add(1)
	if e.opts.NoPrune {
		cutoff2 = math.Inf(1)
	}
	switch e.opts.Measure {
	case MeasureEuclidean, MeasureUMA, MeasureUEMA:
		d2, complete, err := distance.SquaredEuclideanEarlyAbandon(e.vecs[qi], e.vecs[ci], cutoff2)
		if err != nil {
			return 0, false, err
		}
		if !complete {
			e.abandoned.Add(1)
			return 0, false, nil
		}
		e.completed.Add(1)
		return math.Sqrt(d2), true, nil
	case MeasureDTW:
		lb, err := distance.LBKeoghSquared(e.vecs[qi], e.upper[ci], e.lower[ci], cutoff2)
		if err != nil {
			return 0, false, err
		}
		if lb > cutoff2 {
			e.pruned.Add(1)
			return 0, false, nil
		}
		d, complete, err := distance.DTWBandEarlyAbandon(e.vecs[qi], e.vecs[ci], e.band, cutoff2)
		if err != nil {
			return 0, false, err
		}
		if !complete {
			e.abandoned.Add(1)
			return 0, false, nil
		}
		e.completed.Add(1)
		return d, true, nil
	case MeasureDUST:
		d, complete, err := e.dust.DistanceEarlyAbandon(e.w.PDF[qi], e.w.PDF[ci], cutoff2)
		if err != nil {
			return 0, false, err
		}
		if !complete {
			e.abandoned.Add(1)
			return 0, false, nil
		}
		e.completed.Add(1)
		return d, true, nil
	case MeasurePROUD, MeasureMUNICH:
		return 0, false, fmt.Errorf("engine: measure %v defines match probabilities, not distances (use ProbRange/ProbTopK)", e.opts.Measure)
	default:
		return 0, false, fmt.Errorf("engine: unknown measure %v", e.opts.Measure)
	}
}

// Distance returns the measure's exact distance between two series of the
// workload (no pruning) — the reference the pruned paths must agree with.
func (e *Engine) Distance(qi, ci int) (float64, error) {
	if err := e.checkIndex(qi); err != nil {
		return 0, err
	}
	if err := e.checkIndex(ci); err != nil {
		return 0, err
	}
	d, _, err := e.distPruned(qi, ci, math.Inf(1))
	return d, err
}

func (e *Engine) checkIndex(i int) error {
	if i < 0 || i >= e.w.Len() {
		return fmt.Errorf("engine: series index %d outside [0, %d)", i, e.w.Len())
	}
	return nil
}

// sharedBound is a monotonically decreasing float64 shared across the
// workers of one query: the tightest proven upper bound on the k-th best
// squared distance.
type sharedBound struct{ bits atomic.Uint64 }

func newSharedBound() *sharedBound {
	b := &sharedBound{}
	b.bits.Store(math.Float64bits(math.Inf(1)))
	return b
}

func (b *sharedBound) get() float64 { return math.Float64frombits(b.bits.Load()) }

// lower publishes v if it improves (decreases) the bound.
func (b *sharedBound) lower(v float64) {
	for {
		old := b.bits.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if b.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// kHeap is a bounded max-heap over distances: it retains the k smallest
// values seen and exposes the current k-th best as the pruning bound.
type kHeap struct {
	k  int
	ds []float64
}

func newKHeap(k int) *kHeap { return &kHeap{k: k, ds: make([]float64, 0, k)} }

func (h *kHeap) full() bool { return len(h.ds) >= h.k }

// top returns the largest retained distance (only meaningful when full).
func (h *kHeap) top() float64 { return h.ds[0] }

func (h *kHeap) push(d float64) {
	if len(h.ds) < h.k {
		h.ds = append(h.ds, d)
		// sift up
		i := len(h.ds) - 1
		for i > 0 {
			p := (i - 1) / 2
			if h.ds[p] >= h.ds[i] {
				break
			}
			h.ds[p], h.ds[i] = h.ds[i], h.ds[p]
			i = p
		}
		return
	}
	if d >= h.ds[0] {
		return
	}
	h.ds[0] = d
	// sift down
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < len(h.ds) && h.ds[l] > h.ds[big] {
			big = l
		}
		if r < len(h.ds) && h.ds[r] > h.ds[big] {
			big = r
		}
		if big == i {
			return
		}
		h.ds[i], h.ds[big] = h.ds[big], h.ds[i]
		i = big
	}
}

// ulpUp inflates a squared bound by a few ulps so the sqrt-then-square
// round-trip (distances are stored as sqrt, bounds as squares) can never
// exclude a candidate that ties the k-th best exactly. The relative 1e-15
// margin is ~4 ulps — far above the round-trip error, far below any real
// distance gap — and costs no measurable pruning. A relative margin
// vanishes at v = 0 (exact-duplicate series), where ties would survive only
// because every kernel happens to compare with strict >; the absolute floor
// keeps a zero cutoff strictly above every distance that ties it.
func ulpUp(v float64) float64 {
	if v := v + v*1e-15; v > 0 {
		return v
	}
	return math.SmallestNonzeroFloat64
}

// TopK returns the k nearest neighbours of query qi under the engine's
// measure, excluding qi itself, sorted by ascending distance with ties
// broken by ID — exactly what a naive full scan (query.TopK over the exact
// distance) returns.
func (e *Engine) TopK(qi, k int) ([]query.Neighbor, error) {
	res, err := e.TopKBatch([]int{qi}, k)
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

// TopKBatch answers the top-k query for every query index in one batched,
// sharded, work-stealing pass. Results are per-query, in input order, and
// identical to running TopK on each query alone — or to the naive scan —
// for every worker count.
func (e *Engine) TopKBatch(queries []int, k int) ([][]query.Neighbor, error) {
	if k < 1 {
		return nil, fmt.Errorf("engine: k = %d must be positive", k)
	}
	for _, qi := range queries {
		if err := e.checkIndex(qi); err != nil {
			return nil, err
		}
	}
	n := e.w.Len()
	shardSize := e.opts.ShardSize
	numShards := (n + shardSize - 1) / shardSize

	bounds := make([]*sharedBound, len(queries))
	for i := range bounds {
		bounds[i] = newSharedBound()
	}
	// One retained-candidate bucket per (query, shard) pair; written by
	// exactly one worker each, merged after the barrier.
	buckets := make([][]query.Neighbor, len(queries)*numShards)

	err := core.RunSharded(len(queries)*numShards, 1, e.opts.Workers, func(lo, hi int) error {
		for item := lo; item < hi; item++ {
			q, shard := item/numShards, item%numShards
			qi := queries[q]
			cLo, cHi := shard*shardSize, (shard+1)*shardSize
			if cHi > n {
				cHi = n
			}
			local := newKHeap(k)
			var kept []query.Neighbor
			for ci := cLo; ci < cHi; ci++ {
				if ci == qi {
					continue
				}
				cut := bounds[q].get()
				if local.full() {
					if t := ulpUp(local.top() * local.top()); t < cut {
						cut = t
					}
				}
				d, ok, err := e.distPruned(qi, ci, cut)
				if err != nil {
					return fmt.Errorf("engine: query %d candidate %d: %w", qi, ci, err)
				}
				if !ok {
					continue
				}
				kept = append(kept, query.Neighbor{ID: ci, Distance: d})
				local.push(d)
				if local.full() {
					bounds[q].lower(ulpUp(local.top() * local.top()))
				}
			}
			buckets[item] = kept
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	out := make([][]query.Neighbor, len(queries))
	for q := range queries {
		var all []query.Neighbor
		for shard := 0; shard < numShards; shard++ {
			all = append(all, buckets[q*numShards+shard]...)
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].Distance != all[j].Distance {
				return all[i].Distance < all[j].Distance
			}
			return all[i].ID < all[j].ID
		})
		if k < len(all) {
			all = all[:k]
		}
		out[q] = all
	}
	return out, nil
}

// Range returns the IDs of every series within eps of query qi under the
// engine's measure, excluding qi, in ascending ID order — identical to
// query.RangeQueryFunc over the exact distance.
func (e *Engine) Range(qi int, eps float64) ([]int, error) {
	if err := e.checkIndex(qi); err != nil {
		return nil, err
	}
	if math.IsNaN(eps) || eps < 0 {
		return nil, errors.New("engine: eps must be non-negative")
	}
	n := e.w.Len()
	shardSize := e.opts.ShardSize
	numShards := (n + shardSize - 1) / shardSize
	cutoff2 := ulpUp(eps * eps)

	buckets := make([][]int, numShards)
	err := core.RunSharded(numShards, 1, e.opts.Workers, func(lo, hi int) error {
		for shard := lo; shard < hi; shard++ {
			cLo, cHi := shard*shardSize, (shard+1)*shardSize
			if cHi > n {
				cHi = n
			}
			var ids []int
			for ci := cLo; ci < cHi; ci++ {
				if ci == qi {
					continue
				}
				d, ok, err := e.distPruned(qi, ci, cutoff2)
				if err != nil {
					return fmt.Errorf("engine: query %d candidate %d: %w", qi, ci, err)
				}
				if ok && d <= eps {
					ids = append(ids, ci)
				}
			}
			buckets[shard] = ids
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []int
	for _, ids := range buckets {
		out = append(out, ids...)
	}
	return out, nil
}
