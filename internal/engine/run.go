package engine

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"

	"uncertts/internal/qerr"
	"uncertts/internal/query"
	"uncertts/internal/telemetry"
)

// The declarative query surface. The four result shapes x resident/ad-hoc
// targets that used to be eight separate methods collapse into one request
// value and one entry point:
//
//	req := engine.Request{Measure: engine.MeasureDTW, Kind: engine.KindTopK, Index: &qi, K: 5}
//	res, err := e.Run(ctx, req)
//
// Run validates the request up front with field-specific errors (every
// failure wraps a qerr sentinel), plans it onto the measure-native pruned
// execution cores, and threads the context all the way down: the sharded
// executor polls it at every work-item boundary, PROUD polls it at every
// prefix stride, and the DTW and MUNICH kernels poll it inside a single
// long distance or refine computation — so cancelling the context or
// letting its deadline expire stops a running query promptly, drains the
// workers and returns an error wrapping both qerr.ErrCancelled and
// ctx.Err(). Results are bit-identical to the legacy per-shape methods
// (TopK, Range, ProbTopK, ProbRange), which survive as thin wrappers over
// Run.

// Kind is the query family of a Request.
type Kind int

const (
	// KindTopK asks for the K nearest neighbours by distance
	// (distance measures only).
	KindTopK Kind = iota
	// KindRange asks for every candidate within distance Eps
	// (distance measures only).
	KindRange
	// KindProbTopK asks for the K candidates with the highest match
	// probability Pr(distance <= Eps) (probabilistic measures only).
	KindProbTopK
	// KindProbRange asks for every candidate whose match probability
	// Pr(distance <= Eps) reaches Tau (probabilistic measures only).
	KindProbRange
)

// Kinds lists every query kind, in declaration order.
func Kinds() []Kind { return []Kind{KindTopK, KindRange, KindProbTopK, KindProbRange} }

// String names the kind in its wire form ("topk", "range", "probtopk",
// "probrange").
func (k Kind) String() string {
	switch k {
	case KindTopK:
		return "topk"
	case KindRange:
		return "range"
	case KindProbTopK:
		return "probtopk"
	case KindProbRange:
		return "probrange"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Probabilistic reports whether the kind asks a probabilistic threshold
// question (served by MeasurePROUD/MeasureMUNICH) rather than a distance
// question.
func (k Kind) Probabilistic() bool { return k == KindProbTopK || k == KindProbRange }

// ParseKind resolves a case-insensitive kind name ("topk", "range",
// "probtopk", "probrange"). Failure wraps qerr.ErrBadRequest.
func ParseKind(name string) (Kind, error) {
	for _, k := range Kinds() {
		if strings.EqualFold(name, k.String()) {
			return k, nil
		}
	}
	return 0, fmt.Errorf("engine: %w", qerr.BadRequestf("unknown query kind %q (want topk, range, probtopk or probrange)", name))
}

// Request is one declarative query against an engine: what to ask (Kind
// and its parameters), of whom (a resident snapshot position or an ad-hoc
// series), and under which resource envelope (worker budget; the deadline
// travels in the context given to Run). The zero value is not a valid
// request — a target must be set, and K must be at least 1 for the top-k
// kinds.
type Request struct {
	// Measure names the measure the request expects to run under. Run
	// rejects a request whose measure differs from the engine's, so a
	// request routed to the wrong engine fails loudly instead of
	// answering under a different metric. (For MeasureEuclidean this is
	// the zero value; requests built for a Euclidean engine need not set
	// it.)
	Measure Measure
	// Kind selects the query family.
	Kind Kind
	// Index poses the resident series at this snapshot position as the
	// query; the series itself is excluded from the answer. Exactly one
	// of Index and AdHoc must be set.
	Index *int
	// AdHoc poses an arbitrary series as the query; nothing is excluded.
	AdHoc *Query
	// K is the neighbour count for KindTopK and KindProbTopK.
	K int
	// Eps is the distance threshold for KindRange, KindProbTopK and
	// KindProbRange.
	Eps float64
	// Tau is the probability threshold for KindProbRange. PROUD engines
	// accept tau in (0, 1), MUNICH engines in (0, 1].
	Tau float64
	// Workers bounds the executor parallelism for this request
	// (0 = the engine default).
	Workers int
	// Bound optionally shares the KindTopK pruning cut with executions
	// outside this engine: cluster shards answering the same query inject
	// one Bound each, so the global k-th distance tightens every shard's
	// early-abandon cascade mid-flight. Nil keeps the cut private. Kinds
	// other than KindTopK ignore it (range kinds prune on the static
	// Eps/Tau threshold already).
	Bound *Bound
	// ProbBound is Bound for KindProbTopK.
	ProbBound *ProbBound
	// Offset drops the first Offset entries of the result list — the
	// pagination window is applied after the (deterministic) final
	// ordering, so pages are stable across retries on the same snapshot.
	Offset int
	// Limit truncates the result list after Limit entries (0 = all).
	Limit int
}

// Result is the answer to one Request. Exactly one of the three list
// fields is populated, matching the request kind: Neighbors for KindTopK,
// IDs for KindRange and KindProbRange, Matches for KindProbTopK. Entries
// identify candidates by snapshot position (the server layer translates
// them to stable corpus IDs).
type Result struct {
	// Kind echoes the request kind.
	Kind Kind
	// Neighbors holds the KindTopK answer, ascending by distance with
	// ties broken by position.
	Neighbors []query.Neighbor
	// IDs holds the KindRange / KindProbRange answer, ascending.
	IDs []int
	// Matches holds the KindProbTopK answer, descending by probability
	// with ties broken by ascending position.
	Matches []ProbMatch
	// Total is the full answer size before the Offset/Limit window was
	// applied, so paginating clients know when to stop.
	Total int
}

// Item is one incremental result delivered by RunStream: the candidate's
// snapshot position plus the measure of its match — Distance for KindTopK
// and KindRange, Prob for KindProbTopK. KindProbRange items carry the
// position alone (the range predicate can be decided by a sound bound
// without ever computing the probability).
type Item struct {
	ID       int
	Distance float64
	Prob     float64
}

// validate rejects a structurally invalid request with a field-specific
// error; every failure wraps qerr.ErrBadRequest (or ErrUnknownMeasure for
// a measure outside the engine's set).
func (e *Engine) validate(req Request) error {
	if req.Measure != e.opts.Measure {
		return fmt.Errorf("engine: %w", qerr.BadRequestf("request measure %v but this engine serves %v", req.Measure, e.opts.Measure))
	}
	kindKnown := false
	for _, k := range Kinds() {
		if req.Kind == k {
			kindKnown = true
		}
	}
	if !kindKnown {
		return fmt.Errorf("engine: %w", qerr.BadRequestf("unknown query kind %v", int(req.Kind)))
	}
	if req.Kind.Probabilistic() != e.opts.Measure.Probabilistic() {
		return fmt.Errorf("engine: %w", qerr.BadRequestf("kind %s is not served by measure %v", req.Kind, e.opts.Measure))
	}
	switch {
	case req.Index == nil && req.AdHoc == nil:
		return fmt.Errorf("engine: %w", qerr.BadRequestf("the request needs a target: set Index or AdHoc"))
	case req.Index != nil && req.AdHoc != nil:
		return fmt.Errorf("engine: %w", qerr.BadRequestf("Index and AdHoc are mutually exclusive"))
	}
	if req.Kind == KindTopK || req.Kind == KindProbTopK {
		if req.K < 1 {
			return fmt.Errorf("engine: %w", qerr.BadRequestf("k = %d must be at least 1", req.K))
		}
	}
	if req.Kind != KindTopK {
		if math.IsNaN(req.Eps) || req.Eps < 0 {
			return fmt.Errorf("engine: %w", qerr.BadRequestf("eps = %v must be non-negative", req.Eps))
		}
	}
	if req.Kind == KindProbRange {
		// Only the broad [0, 1] sanity check lives here; the execution
		// core's checkTau applies the measure-specific domain (PROUD
		// (0, 1), MUNICH (0, 1]) before any scan work — and computes
		// PROUD's eps_limit exactly once per request while at it.
		if math.IsNaN(req.Tau) || req.Tau < 0 || req.Tau > 1 {
			return fmt.Errorf("engine: %w", qerr.BadRequestf("tau = %v outside [0, 1]", req.Tau))
		}
	}
	if req.Workers < 0 {
		return fmt.Errorf("engine: %w", qerr.BadRequestf("workers = %d must be non-negative", req.Workers))
	}
	if req.Offset < 0 {
		return fmt.Errorf("engine: %w", qerr.BadRequestf("offset = %d must be non-negative", req.Offset))
	}
	if req.Limit < 0 {
		return fmt.Errorf("engine: %w", qerr.BadRequestf("limit = %d must be non-negative (0 = no limit)", req.Limit))
	}
	return nil
}

// window applies the request's Offset/Limit pagination to a final result
// list.
func window[T any](xs []T, offset, limit int) []T {
	if offset >= len(xs) {
		return nil
	}
	xs = xs[offset:]
	if limit > 0 && limit < len(xs) {
		xs = xs[:limit]
	}
	return xs
}

// Run executes one declarative request against the engine's snapshot and
// returns its result. It is the single entry point every query shape goes
// through: the request is validated up front (failures wrap the qerr
// sentinels), planned onto the measure-native pruned execution core for
// its kind, and executed under ctx — cancellation or an expired deadline
// drains the executor workers and returns an error wrapping both
// qerr.ErrCancelled and ctx.Err(). Results are bit-identical to the
// legacy per-shape methods for every measure and worker count.
func (e *Engine) Run(ctx context.Context, req Request) (*Result, error) {
	return e.RunStream(ctx, req, nil)
}

// RunStream is Run with incremental delivery: emit (when non-nil) is
// called once per confirmed result entry. Range-shaped kinds (KindRange,
// KindProbRange) emit each match as its executor shard confirms it —
// mid-scan, in nondeterministic order under parallelism — while the top-k
// kinds emit the final ranked list as it is confirmed at the merge, in
// order. Emission ignores the Offset/Limit window (the full confirmed
// stream is delivered; the window applies to the returned Result), emit is
// never called concurrently with itself, and a non-nil emit error aborts
// the query and is returned verbatim.
func (e *Engine) RunStream(ctx context.Context, req Request, emit func(Item) error) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := e.validate(req); err != nil {
		return nil, err
	}
	var pq *PreparedQuery
	var err error
	if req.Index != nil {
		pq, err = e.PrepareIndex(*req.Index)
	} else {
		pq, err = e.Prepare(*req.AdHoc)
	}
	if err != nil {
		return nil, err
	}
	pq.Workers = req.Workers
	pq.Bound, pq.ProbBound = req.Bound, req.ProbBound

	// Serialize worker-side emissions so emit needs no locking of its own.
	var emitMu sync.Mutex
	locked := func(it Item) error {
		emitMu.Lock()
		defer emitMu.Unlock()
		return emit(it)
	}

	res := &Result{Kind: req.Kind}
	// The refine span covers the whole execution core — index descent spans
	// nest inside it when the indexed path runs.
	refineSpan := telemetry.TraceFrom(ctx).Start("refine")
	switch req.Kind {
	case KindTopK:
		var out [][]query.Neighbor
		out, err = e.topKPrepared(ctx, []*PreparedQuery{pq}, req.K)
		if err == nil {
			res.Neighbors = out[0]
			res.Total = len(res.Neighbors)
			if emit != nil {
				for _, n := range res.Neighbors {
					if err = locked(Item{ID: n.ID, Distance: n.Distance}); err != nil {
						break
					}
				}
			}
			res.Neighbors = window(res.Neighbors, req.Offset, req.Limit)
		}
	case KindRange:
		var rangeEmit func(id int, dist float64) error
		if emit != nil {
			rangeEmit = func(id int, dist float64) error {
				return locked(Item{ID: id, Distance: dist})
			}
		}
		res.IDs, err = e.rangePrepared(ctx, pq, req.Eps, rangeEmit)
		if err == nil {
			res.Total = len(res.IDs)
			res.IDs = window(res.IDs, req.Offset, req.Limit)
		}
	case KindProbRange:
		var probEmit func(q, id int) error
		if emit != nil {
			probEmit = func(_, id int) error {
				return locked(Item{ID: id})
			}
		}
		var out [][]int
		out, err = e.probRangePrepared(ctx, []*PreparedQuery{pq}, req.Eps, req.Tau, probEmit)
		if err == nil {
			res.IDs = out[0]
			res.Total = len(res.IDs)
			res.IDs = window(res.IDs, req.Offset, req.Limit)
		}
	case KindProbTopK:
		var out [][]ProbMatch
		out, err = e.probTopKPrepared(ctx, []*PreparedQuery{pq}, req.Eps, req.K)
		if err == nil {
			res.Matches = out[0]
			res.Total = len(res.Matches)
			if emit != nil {
				for _, m := range res.Matches {
					if err = locked(Item{ID: m.ID, Prob: m.Prob}); err != nil {
						break
					}
				}
			}
			res.Matches = window(res.Matches, req.Offset, req.Limit)
		}
	}
	refineSpan.EndErr(err)
	recordStatsMetrics(e.opts.Measure, e.Stats())
	if err != nil {
		// Normalise cancellations so the caller always sees both the
		// qerr sentinel and the context's own error, wherever in the
		// stack the cancellation was detected first.
		if qerr.IsCancellation(err) && ctx.Err() != nil {
			return nil, fmt.Errorf("engine: %w", qerr.Cancelled(ctx.Err()))
		}
		return nil, err
	}
	return res, nil
}
