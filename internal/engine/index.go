package engine

import (
	"cmp"
	"context"
	"fmt"
	"math"
	"slices"
	"sort"
	"sync"

	"uncertts/internal/core"
	"uncertts/internal/corpus"
	"uncertts/internal/distance"
	"uncertts/internal/munich"
	"uncertts/internal/proud"
	"uncertts/internal/query"
	"uncertts/internal/sketch"
	"uncertts/internal/telemetry"
)

// Indexed execution: instead of sharding the candidate space positionally,
// the engine walks the snapshot's sketch index (internal/sketch) bucket by
// bucket. Each bucket carries the elementwise [min, max] region of its
// members' sketch rows, from which every measure derives a sound lower
// bound (or, for the probabilistic measures, a sound probability upper
// bound) on all members at once:
//
//   - Euclidean/UMA/UEMA: PAA MinDist over the measure's segment-mean block;
//   - DTW: the exact endpoint gaps (every warping path aligns (0,0) and
//     (N-1,N-1) — LB_Kim's first/last terms, read from the row's v0/vLast
//     columns) plus the larger of two envelope bounds over the interior
//     segments: query PAA against the bucket's envelope block (LB_Keogh's
//     LB_PAA form) and the bucket's raw-PAA block against the query's own
//     envelope means (the reverse bound); both chain under DTW^2;
//   - PROUD: the bucket's squared-gap interval [MinDist, 2(E_q + maxE)]
//     pushed through the same moment bounds the per-candidate prefix
//     pruning uses;
//   - MUNICH: the segment-envelope lower bound against the bucket's
//     envelope region — above eps every member's probability is exactly 0.
//
// Buckets are ranked best-first per query (ascending distance bound,
// descending probability bound), so the shared per-query bound tightens on
// the nearest candidates first and far buckets are skipped wholesale at
// their work item — workers cooperate across buckets exactly as the linear
// path cooperates across shards. Inside a surviving bucket, each member is
// prefiltered by the same bound evaluated on its own sketch row (the
// classic iSAX leaf check: an O(W) read of the summary before the O(N)
// series is touched) — a bucket's box is the union of dozens of rows and
// admits far more than any single row does. Every skip, bucket- or
// member-level, is backed by a bound that is sound under the same
// floating-point margins the per-candidate pruning uses (indexBoundMargin
// in distance space, probBoundMargin in probability space), so indexed
// answers are bit-identical to the linear scan, which the parity tests
// assert for every measure and worker count.
//
// Survivors feed the existing per-candidate prune cascade unchanged: the
// index only decides which candidates are examined at all. The Stats
// identity extends to Candidates + SeriesSkippedByIndex = queries * (N-1)
// for index queries.

// defaultIndexThreshold is the snapshot size below which the index is not
// engaged (Options.IndexThreshold zero value): under ~a thousand resident
// series the linear scan beats the bucket bookkeeping.
const defaultIndexThreshold = 1024

// indexBoundMargin deflates distance-space bucket bounds before a skip
// comparison. MinDistSquared is sound in exact arithmetic; the relative
// margin (enormous next to float64 rounding, tiny next to any real distance
// gap) keeps it sound under floating point — the same philosophy as
// probBoundMargin on the probability side.
const indexBoundMargin = 1e-9

func deflate(v float64) float64 { return v - v*indexBoundMargin }

// engineIndex is the engine's resolved view of the snapshot's sketch index:
// the bucket list collected once at construction, the row layout, and
// whether member rows coincide with snapshot positions (dense snapshots).
type engineIndex struct {
	lay     sketch.Layout
	tree    *sketch.Tree
	buckets []sketch.Bucket
	dense   bool
}

// resolveIndex decides whether the engine can serve queries through the
// sketch index and captures the bucket list if so. The index engages only
// when the per-measure bound is sound for this engine's configuration:
// UMA/UEMA need the corpus filter config (the sketch summarises the arena
// vectors), DTW the corpus band (the sketch summarises the arena
// envelopes), MUNICH the corpus segment count; DUST has no sketch bound at
// all. Euclidean and PROUD scan the raw observations, which the sketch
// always summarises.
func (e *Engine) resolveIndex(cfg corpus.Config, dense, filterReuse bool) {
	if e.opts.NoPrune || e.opts.NoIndex {
		return
	}
	threshold := e.opts.IndexThreshold
	if threshold == 0 {
		threshold = defaultIndexThreshold
	}
	if threshold > 0 && e.snap.Len() < threshold {
		return
	}
	tree := e.snap.Index()
	if tree == nil || tree.Len() != e.snap.Len() {
		return
	}
	switch e.opts.Measure {
	case MeasureEuclidean, MeasurePROUD:
	case MeasureUMA, MeasureUEMA:
		if !filterReuse {
			return
		}
	case MeasureDTW:
		if e.band != cfg.Band {
			return
		}
	case MeasureMUNICH:
		if e.segments != cfg.Segments {
			return
		}
	default:
		return
	}
	e.idx = &engineIndex{lay: tree.Layout(), tree: tree, buckets: tree.Buckets(), dense: dense}
}

// Indexed reports whether queries run through the sketch index (false when
// the engine fell back to the linear scan — small snapshot, mismatched
// geometry, NoIndex/NoPrune, or a measure without a sketch bound).
func (e *Engine) Indexed() bool { return e.idx != nil }

// memberPos resolves a bucket member to its snapshot position: the arena
// row on dense snapshots, the ID lookup otherwise. A negative return means
// the member is unknown to the snapshot, which the corpus' incremental
// maintenance rules out; callers skip it defensively.
func (e *Engine) memberPos(m sketch.Member) int {
	if e.idx.dense {
		return m.Row
	}
	if p, ok := e.snap.PosOf(m.ID); ok {
		return p
	}
	return -1
}

// idxTally batches one worker chunk's stats deltas so the hot bucket loops
// touch no shared atomics; flushed once per chunk. Skipped buckets count
// every member — including the query itself when its bucket happens to be
// skipped, which the caller corrects once per query at the end (selfFix)
// rather than scanning every skipped bucket's member list for it.
type idxTally struct{ visited, pruned, skipped int64 }

func (t *idxTally) flush(e *Engine) {
	if t.visited != 0 {
		e.bucketsVisited.Add(t.visited)
	}
	if t.pruned != 0 {
		e.bucketsPruned.Add(t.pruned)
	}
	if t.skipped != 0 {
		e.seriesSkipped.Add(t.skipped)
	}
}

// selfFix settles the query-itself term of the skipped-series counter: the
// query's series lives in exactly one bucket, so either it surfaced in a
// visited bucket's member loop (sawSelf, never counted anywhere) or its
// bucket was skipped wholesale and the tally counted it once too many.
func (e *Engine) selfFix(pq *PreparedQuery, sawSelf bool) {
	if pq.self >= 0 && !sawSelf {
		e.seriesSkipped.Add(-1)
	}
}

// bucketLB2 returns the measure's sound lower bound on the squared distance
// between the prepared query and every member of the bucket.
func (e *Engine) bucketLB2(pq *PreparedQuery, bk sketch.Bucket) float64 {
	lay := e.idx.lay
	w := lay.W
	switch e.opts.Measure {
	case MeasureEuclidean:
		return sketch.MinDistSquared(pq.qpaa, bk.Lo[:w], bk.Hi[:w], lay.Spans)
	case MeasureUMA:
		return sketch.MinDistSquared(pq.qpaa, bk.Lo[w:2*w], bk.Hi[w:2*w], lay.Spans)
	case MeasureUEMA:
		return sketch.MinDistSquared(pq.qpaa, bk.Lo[2*w:3*w], bk.Hi[2*w:3*w], lay.Spans)
	case MeasureDTW:
		return e.dtwLB2(pq, bk.Lo, bk.Hi)
	}
	return 0
}

// gap2 is the squared distance from v to the interval [lo, hi].
func gap2(v, lo, hi float64) float64 {
	switch {
	case v < lo:
		return (lo - v) * (lo - v)
	case v > hi:
		return (v - hi) * (v - hi)
	}
	return 0
}

// dtwLB2 lower-bounds the squared banded DTW distance between the query and
// every series whose sketch row lies in [lo, hi] (a bucket region, or a
// single row passed as both bounds). Every warping path aligns the endpoint
// pairs (0, 0) and (N-1, N-1), so their exact gaps — against the row's
// v0/vLast columns — add to any envelope bound summed over the interior
// segments only (the edge segments are excluded so the endpoint timestamps
// are never counted twice). The envelope part takes the larger of the
// forward form (query PAA vs the region's LB_Keogh envelope means; Keogh's
// LB_PAA, sound by Cauchy-Schwarz per segment) and the reverse form (the
// region's raw-PAA box vs the query's own envelope means, sound by the
// symmetric argument).
func (e *Engine) dtwLB2(pq *PreparedQuery, lo, hi []float64) float64 {
	lay := e.idx.lay
	w := lay.W
	kim := gap2(pq.vec[0], lo[lay.OffV0()], hi[lay.OffV0()]) +
		gap2(pq.vec[len(pq.vec)-1], lo[lay.OffVLast()], hi[lay.OffVLast()])
	interior := lay.Interior()
	if interior == nil {
		return kim
	}
	fwd := sketch.MinDistSquared(pq.qpaa[1:w-1], lo[3*w+1:4*w-1], hi[4*w+1:5*w-1], interior)
	rev := sketch.IntervalMinDistSquared(lo[1:w-1], hi[1:w-1], pq.qenvLo[1:w-1], pq.qenvHi[1:w-1], interior)
	return kim + math.Max(fwd, rev)
}

// bucketBound evaluates the bucket's deflated lower bound under an
// abandonment limit derived from cut. The skip return is exactly the
// decision deflate(bucketLB2(pq, bk)) > cut makes, but the accumulation
// abandons at the first segment that settles it — once a query's shared
// bound is finite, almost every bucket crosses the limit within a few
// segments, so the sweep never pays the full O(W) sum the eager form costs.
// When the bucket survives (skip false), the returned bound is the exact
// deflated bound, usable as a best-first sort key and for re-checks against
// a later, tighter cut. For DTW the three sound components (endpoint gaps,
// forward and reverse interior envelope bounds) are tried cheapest-first;
// any one of them clearing limit-kim settles the max the eager bound takes.
func (e *Engine) bucketBound(pq *PreparedQuery, bk sketch.Bucket, cut float64) (float64, bool) {
	lay := e.idx.lay
	w := lay.W
	limit := cut / (1 - indexBoundMargin) // deflate(v) > cut  <=>  v > limit
	switch e.opts.Measure {
	case MeasureEuclidean:
		v, over := sketch.MinDistSquaredBounded(pq.qpaa, bk.Lo[:w], bk.Hi[:w], lay.Spans, limit)
		return deflate(v), over
	case MeasureUMA:
		v, over := sketch.MinDistSquaredBounded(pq.qpaa, bk.Lo[w:2*w], bk.Hi[w:2*w], lay.Spans, limit)
		return deflate(v), over
	case MeasureUEMA:
		v, over := sketch.MinDistSquaredBounded(pq.qpaa, bk.Lo[2*w:3*w], bk.Hi[2*w:3*w], lay.Spans, limit)
		return deflate(v), over
	case MeasureDTW:
		kim := gap2(pq.vec[0], bk.Lo[lay.OffV0()], bk.Hi[lay.OffV0()]) +
			gap2(pq.vec[len(pq.vec)-1], bk.Lo[lay.OffVLast()], bk.Hi[lay.OffVLast()])
		if kim > limit {
			return deflate(kim), true
		}
		interior := lay.Interior()
		if interior == nil {
			return deflate(kim), false
		}
		fwd, over := sketch.MinDistSquaredBounded(pq.qpaa[1:w-1], bk.Lo[3*w+1:4*w-1], bk.Hi[4*w+1:5*w-1], interior, limit-kim)
		if over {
			return deflate(kim + fwd), true
		}
		rev, over := sketch.IntervalMinDistSquaredBounded(bk.Lo[1:w-1], bk.Hi[1:w-1], pq.qenvLo[1:w-1], pq.qenvHi[1:w-1], interior, limit-kim)
		if over {
			return deflate(kim + rev), true
		}
		return deflate(kim + math.Max(fwd, rev)), false
	}
	return 0, false
}

// bucketSkip is bucketBound's decision without the value (static-cutoff
// paths, where nothing ranks the survivors).
func (e *Engine) bucketSkip(pq *PreparedQuery, bk sketch.Bucket, cut float64) bool {
	_, over := e.bucketBound(pq, bk, cut)
	return over
}

// memberSkip is bucketLB2 evaluated on one member's own sketch row — the
// iSAX leaf check, dramatically tighter than the bucket's union box —
// phrased as a skip decision so the accumulation abandons as soon as the
// margin-deflated bound provably exceeds cut. The lock-step measures
// collapse the interval to a point (the member's exact PAA); DTW chains its
// exact endpoint terms with the forward and reverse interior envelope
// bounds, trying the forward form first.
func (e *Engine) memberSkip(pq *PreparedQuery, row []float64, cut float64) bool {
	lay := e.idx.lay
	w := lay.W
	limit := cut / (1 - indexBoundMargin) // deflate(v) > cut  <=>  v > limit
	switch e.opts.Measure {
	case MeasureEuclidean:
		return sketch.MinDistSquaredOver(pq.qpaa, row[:w], row[:w], lay.Spans, limit)
	case MeasureUMA:
		return sketch.MinDistSquaredOver(pq.qpaa, row[w:2*w], row[w:2*w], lay.Spans, limit)
	case MeasureUEMA:
		return sketch.MinDistSquaredOver(pq.qpaa, row[2*w:3*w], row[2*w:3*w], lay.Spans, limit)
	case MeasureDTW:
		d0 := pq.vec[0] - row[lay.OffV0()]
		dn := pq.vec[len(pq.vec)-1] - row[lay.OffVLast()]
		kim := d0*d0 + dn*dn
		if kim > limit {
			return true
		}
		interior := lay.Interior()
		if interior == nil {
			return false
		}
		if sketch.MinDistSquaredOver(pq.qpaa[1:w-1], row[3*w+1:4*w-1], row[4*w+1:5*w-1], interior, limit-kim) {
			return true
		}
		return sketch.MinDistSquaredOver(row[1:w-1], pq.qenvLo[1:w-1], pq.qenvHi[1:w-1], interior, limit-kim)
	}
	return false
}

// sketchRow returns the sketch row of the series at snapshot position ci
// (aliasing the arena; read-only).
func (e *Engine) sketchRow(ci int) []float64 { return e.snap.Entry(ci).Sketch }

// globalKHeap is the query-wide top-k accumulator all bucket work items of
// one query share: every completed distance feeds it under a mutex, and
// once full its k-th best tightens the query's shared bound. Bucket work
// items are far smaller than the linear path's shards, so a per-item heap
// would almost never fill and the bound would stop tightening after the
// first bucket.
type globalKHeap struct {
	mu sync.Mutex
	h  *kHeap
}

func (g *globalKHeap) offer(d float64, b *sharedBound) {
	g.mu.Lock()
	g.h.push(d)
	if g.h.full() {
		b.lower(ulpUp(g.h.top() * g.h.top()))
	}
	g.mu.Unlock()
}

// globalProbHeap is the probability-side counterpart of globalKHeap.
type globalProbHeap struct {
	mu sync.Mutex
	h  *probHeap
}

func (g *globalProbHeap) offer(p float64, b *sharedMaxBound) {
	g.mu.Lock()
	g.h.push(p)
	if g.h.full() {
		b.raise(g.h.top())
	}
	g.mu.Unlock()
}

// proudBucketGap brackets the squared observation gap between the query and
// every bucket member: [MinDist^2, 2(E_q + max member energy)] (the upper
// end is Cauchy-Schwarz: sum (q-c)^2 <= 2 sum q^2 + 2 sum c^2).
func (e *Engine) proudBucketGap(pq *PreparedQuery, bk sketch.Bucket) (lb2, ub2 float64) {
	lay := e.idx.lay
	w := lay.W
	lb2 = sketch.MinDistSquared(pq.qpaa, bk.Lo[:w], bk.Hi[:w], lay.Spans)
	ub2 = 2 * (pq.suffix[0] + bk.Hi[lay.OffEnergy()])
	if ub2 < lb2 {
		ub2 = lb2
	}
	return lb2, ub2
}

// munichBucketPruned reports whether the segment-envelope lower bound
// excludes the whole bucket: the bucket's envelope region contains every
// member's envelope, so a bound above eps proves every member's match
// probability is exactly 0.
func (e *Engine) munichBucketPruned(pq *PreparedQuery, bk sketch.Bucket, eps float64) bool {
	lay := e.idx.lay
	env := munich.Envelope{
		Lo: bk.Lo[lay.OffMLo() : lay.OffMLo()+lay.S],
		Hi: bk.Hi[lay.OffMHi() : lay.OffMHi()+lay.S],
	}
	return munich.EnvelopeLowerBound(pq.env, env, e.spans) > eps
}

// proudMemberGap is proudBucketGap evaluated on one member's own sketch
// row: the exact-PAA lower bound and the member's own energy.
func (e *Engine) proudMemberGap(pq *PreparedQuery, row []float64) (lb2, ub2 float64) {
	lay := e.idx.lay
	w := lay.W
	lb2 = sketch.MinDistSquared(pq.qpaa, row[:w], row[:w], lay.Spans)
	ub2 = 2 * (pq.suffix[0] + row[lay.OffEnergy()])
	if ub2 < lb2 {
		ub2 = lb2
	}
	return lb2, ub2
}

// bucketProbUB returns a sound upper bound on the match probability of
// every bucket member (probability-ranked queries). PROUD pushes the
// bucket's gap interval through the same moment bounds its per-candidate
// prefix pruning uses; MUNICH's envelope bound fixes the probability at
// exactly 0 or proves nothing (+Inf keeps the bucket unskippable).
func (e *Engine) bucketProbUB(pq *PreparedQuery, bk sketch.Bucket, eps float64) float64 {
	if e.opts.Measure == MeasurePROUD {
		lb2, ub2 := e.proudBucketGap(pq, bk)
		return proud.ProbWithinUpper(lb2, 4*pq.varD*lb2, len(pq.vec), pq.varD, ub2-lb2, eps)
	}
	if e.munichBucketPruned(pq, bk, eps) {
		return 0
	}
	return math.Inf(1)
}

// bucketPlan is one bucket scheduled for a query, carrying the bound it was
// ranked by (deflated lb2 for distance queries, probability upper bound for
// probability queries) so the work item can re-check it against the live
// shared bound and skip mid-flight.
type bucketPlan struct {
	idx   int
	bound float64
}

// planBuckets evaluates every query's bucket bound and sorts each query's
// plan by the given order (best bucket first). Both steps run sharded: for
// the cheap measures the O(queries x buckets x W) bound evaluation rivals
// the whole indexed scan, so leaving it serial would squander the index.
func (e *Engine) planBuckets(ctx context.Context, pqs []*PreparedQuery, bound func(pq *PreparedQuery, bk sketch.Bucket) float64, better func(a, b float64) bool) (plans [][]bucketPlan, err error) {
	sp := telemetry.TraceFrom(ctx).Start("index_descent")
	defer func() { sp.EndErr(err) }()
	nb := len(e.idx.buckets)
	flat := make([]bucketPlan, len(pqs)*nb)
	err = core.RunShardedCtx(ctx, len(pqs)*nb, 0, e.workersFor(pqs), func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			flat[i] = bucketPlan{idx: i % nb, bound: bound(pqs[i/nb], e.idx.buckets[i%nb])}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	plans = make([][]bucketPlan, len(pqs))
	err = core.RunShardedCtx(ctx, len(pqs), 1, e.workersFor(pqs), func(lo, hi int) error {
		for q := lo; q < hi; q++ {
			pl := flat[q*nb : (q+1)*nb]
			slices.SortFunc(pl, func(a, b bucketPlan) int {
				switch {
				case better(a.bound, b.bound):
					return -1
				case better(b.bound, a.bound):
					return 1
				}
				return 0
			})
			plans[q] = pl
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return plans, nil
}

// seedCounts sizes each query's serial seed prefix: enough leading plan
// entries that the member loops must surface more than k candidates (one
// extra covers the query itself among them), so the query's shared bound is
// finite before the sharded sweep fans out mid-plan — a worker landing on a
// far bucket while the bound is still infinite would run unpruned kernels.
func seedCounts(plans [][]bucketPlan, buckets []sketch.Bucket, k int) []int {
	seeds := make([]int, len(plans))
	for q, plan := range plans {
		m := 0
		seeds[q] = len(plan)
		for i, pl := range plan {
			m += len(buckets[pl.idx].Members)
			if m > k {
				seeds[q] = i + 1
				break
			}
		}
	}
	return seeds
}

// seedBuckets picks each query's seed set for the distance top-k path: the
// query's home leaf first (the tree descent by its PAA symbols — its SAX
// neighbours, whose exact distances make the shared bound near-final), then
// the best-bounded buckets of a deterministic stride sample until more than
// k candidates have surfaced. A near-final cut is what lets the plan pass
// test every remaining bucket with the early-abandoning bound instead of
// ranking them all eagerly, which on one core rivaled the cheap measures'
// entire linear scan.
func (e *Engine) seedBuckets(pqs []*PreparedQuery, k int) [][]int {
	nb := len(e.idx.buckets)
	stride := nb / 256
	if stride < 1 {
		stride = 1
	}
	out := make([][]int, len(pqs))
	sample := make([]bucketPlan, 0, nb/stride+1)
	for q, pq := range pqs {
		m := 0
		home := -1
		if pq.qpaa != nil {
			if home = e.idx.tree.Locate(pq.qpaa); home >= 0 {
				out[q] = append(out[q], home)
				m += len(e.idx.buckets[home].Members)
			}
		}
		if m > k {
			continue
		}
		sample = sample[:0]
		for bi := 0; bi < nb; bi += stride {
			if bi == home {
				continue
			}
			sample = append(sample, bucketPlan{idx: bi, bound: e.bucketLB2(pq, e.idx.buckets[bi])})
		}
		slices.SortFunc(sample, func(a, b bucketPlan) int { return cmp.Compare(a.bound, b.bound) })
		for _, pl := range sample {
			out[q] = append(out[q], pl.idx)
			m += len(e.idx.buckets[pl.idx].Members)
			if m > k {
				break
			}
		}
	}
	return out
}

// topKIndexed is the indexed counterpart of topKPrepared, in four stages:
//
//  1. seed: the sampled best buckets per query run their exact kernels
//     serially (queries in parallel), making the shared bound finite;
//  2. plan: every remaining bucket is tested with the early-abandoning
//     bound at the seeded cut — almost all of them settle within a few
//     segments and are skipped wholesale without ranking;
//  3. sort: the few survivors are ordered best-first by the exact bounds
//     the plan pass got for free;
//  4. work: survivors run sharded in that order, each re-checked against
//     the live cut first — the nearest buckets tighten it to final almost
//     immediately, so later survivors usually skip at an O(1) compare.
//
// The previous eager design ranked every bucket with a full O(W) bound,
// which on one core rivaled the cheap measures' entire linear scan.
func (e *Engine) topKIndexed(ctx context.Context, pqs []*PreparedQuery, k int) ([][]query.Neighbor, error) {
	nb := len(e.idx.buckets)
	done := ctx.Done()
	bounds := make([]*sharedBound, len(pqs))
	heaps := make([]*globalKHeap, len(pqs))
	for q := range pqs {
		bounds[q] = pqs[q].boundRef()
		heaps[q] = &globalKHeap{h: newKHeap(k)}
	}
	buckets := make([][]query.Neighbor, len(pqs)*nb)
	sawSelf := make([]bool, len(pqs))
	seeded := make([]bool, len(pqs)*nb)

	visit := func(q, bi int, scratch *distance.DTWScratch, t *idxTally) error {
		pq := pqs[q]
		bk := e.idx.buckets[bi]
		t.visited++
		var kept []query.Neighbor
		for _, m := range bk.Members {
			ci := e.memberPos(m)
			if ci < 0 {
				continue
			}
			if ci == pq.self {
				sawSelf[q] = true
				continue
			}
			cut := bounds[q].get()
			if e.memberSkip(pq, e.sketchRow(ci), cut) {
				t.skipped++
				continue
			}
			d, ok, err := e.distPruned(pq, ci, cut, done, scratch)
			if err != nil {
				return fmt.Errorf("engine: query %d candidate %d: %w", q, ci, err)
			}
			if !ok {
				continue
			}
			kept = append(kept, query.Neighbor{ID: ci, Distance: d})
			heaps[q].offer(d, bounds[q])
		}
		buckets[q*nb+bi] = kept
		return nil
	}

	seedSpan := telemetry.TraceFrom(ctx).Start("index_descent")
	seeds := e.seedBuckets(pqs, k)
	seedSpan.End()
	err := core.RunShardedCtx(ctx, len(pqs), 1, e.workersFor(pqs), func(lo, hi int) error {
		var scratch distance.DTWScratch
		var t idxTally
		for q := lo; q < hi; q++ {
			for _, bi := range seeds[q] {
				seeded[q*nb+bi] = true
				bk := e.idx.buckets[bi]
				if e.bucketSkip(pqs[q], bk, bounds[q].get()) {
					t.pruned++
					t.skipped += int64(len(bk.Members))
					continue
				}
				if err := visit(q, bi, &scratch, &t); err != nil {
					return err
				}
			}
		}
		t.flush(e)
		return nil
	})
	if err != nil {
		return nil, err
	}

	plans := make([][]bucketPlan, len(pqs))
	err = core.RunShardedCtx(ctx, len(pqs), 1, e.workersFor(pqs), func(lo, hi int) error {
		var t idxTally
		for q := lo; q < hi; q++ {
			pq := pqs[q]
			for bi := 0; bi < nb; bi++ {
				if seeded[q*nb+bi] {
					continue
				}
				bk := e.idx.buckets[bi]
				bound, skip := e.bucketBound(pq, bk, bounds[q].get())
				if skip {
					t.pruned++
					t.skipped += int64(len(bk.Members))
					continue
				}
				plans[q] = append(plans[q], bucketPlan{idx: bi, bound: bound})
			}
			slices.SortFunc(plans[q], func(a, b bucketPlan) int { return cmp.Compare(a.bound, b.bound) })
		}
		t.flush(e)
		return nil
	})
	if err != nil {
		return nil, err
	}

	type workItem struct {
		q  int
		pl bucketPlan
	}
	var items []workItem
	for q := range plans {
		for _, pl := range plans[q] {
			items = append(items, workItem{q: q, pl: pl})
		}
	}
	err = core.RunShardedCtx(ctx, len(items), 0, e.workersFor(pqs), func(lo, hi int) error {
		var scratch distance.DTWScratch
		var t idxTally
		for i := lo; i < hi; i++ {
			it := items[i]
			if it.pl.bound > bounds[it.q].get() {
				t.pruned++
				t.skipped += int64(len(e.idx.buckets[it.pl.idx].Members))
				continue
			}
			if err := visit(it.q, it.pl.idx, &scratch, &t); err != nil {
				return err
			}
		}
		t.flush(e)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for q, pq := range pqs {
		e.selfFix(pq, sawSelf[q])
	}

	out := make([][]query.Neighbor, len(pqs))
	for q := range pqs {
		var all []query.Neighbor
		for bi := 0; bi < nb; bi++ {
			all = append(all, buckets[q*nb+bi]...)
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].Distance != all[j].Distance {
				return all[i].Distance < all[j].Distance
			}
			return all[i].ID < all[j].ID
		})
		if k < len(all) {
			all = all[:k]
		}
		out[q] = all
	}
	return out, nil
}

// rangeIndexed is the indexed counterpart of rangePrepared. The cutoff is
// static, so best-first bucket ordering buys nothing here; instead, the
// members of every bucket the bound cannot exclude are sorted back into
// snapshot position order and scanned contiguously — bucket order would hop
// all over the arenas and forfeit the locality the columnar layout exists
// for. Each survivor is still prefiltered by its own sketch row before the
// kernel runs.
func (e *Engine) rangeIndexed(ctx context.Context, pq *PreparedQuery, eps float64, emit func(id int, dist float64) error) ([]int, error) {
	cutoff2 := ulpUp(eps * eps)
	done := ctx.Done()
	var cands []int
	var tally idxTally
	sawSelf := false
	for _, bk := range e.idx.buckets {
		if e.bucketSkip(pq, bk, cutoff2) {
			tally.pruned++
			tally.skipped += int64(len(bk.Members))
			continue
		}
		tally.visited++
		for _, m := range bk.Members {
			ci := e.memberPos(m)
			if ci < 0 {
				continue
			}
			if ci == pq.self {
				sawSelf = true
				continue
			}
			cands = append(cands, ci)
		}
	}
	tally.flush(e)
	e.selfFix(pq, sawSelf)
	sort.Ints(cands)

	shardSize := e.opts.ShardSize
	numShards := (len(cands) + shardSize - 1) / shardSize
	buckets := make([][]int, numShards)
	err := core.RunShardedCtx(ctx, numShards, 1, e.workersFor([]*PreparedQuery{pq}), func(lo, hi int) error {
		var scratch distance.DTWScratch
		for shard := lo; shard < hi; shard++ {
			cLo, cHi := shard*shardSize, (shard+1)*shardSize
			if cHi > len(cands) {
				cHi = len(cands)
			}
			var ids []int
			var skipped int64
			for _, ci := range cands[cLo:cHi] {
				if e.memberSkip(pq, e.sketchRow(ci), cutoff2) {
					skipped++
					continue
				}
				d, ok, err := e.distPruned(pq, ci, cutoff2, done, &scratch)
				if err != nil {
					return fmt.Errorf("engine: candidate %d: %w", ci, err)
				}
				if ok && d <= eps {
					ids = append(ids, ci)
					if emit != nil {
						if err := emit(ci, d); err != nil {
							return err
						}
					}
				}
			}
			e.seriesSkipped.Add(skipped)
			buckets[shard] = ids
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []int
	for _, ids := range buckets {
		out = append(out, ids...)
	}
	return out, nil
}

// probCand is one (query, candidate position) pair surviving the bucket
// prefilter.
type probCand struct{ q, ci int }

// probRangeIndexed is the indexed counterpart of probRangePrepared. The
// threshold is static, so bucket order buys nothing; surviving members are
// sorted back into snapshot position order per query and scanned
// contiguously, preserving the arenas' locality. PROUD skips a bucket only
// when the moment bounds Reject the whole gap interval (an Accept still
// visits: the answer needs the member list either way, examined exactly as
// the linear scan examines it) and prefilters each survivor by its own row;
// MUNICH skips a bucket when the envelope bound fixes every member's
// probability at 0 < tau, and has no member-level prefilter — the
// per-candidate cascade already opens with the same envelope bound, so
// re-evaluating it on the sketch row would be pure duplicated work.
func (e *Engine) probRangeIndexed(ctx context.Context, pqs []*PreparedQuery, eps, tau, epsLimit float64, emit func(q, id int) error) ([][]int, error) {
	done := ctx.Done()
	var flat []probCand
	for q, pq := range pqs {
		start := len(flat)
		var tally idxTally
		sawSelf := false
		for _, bk := range e.idx.buckets {
			var skip bool
			if e.opts.Measure == MeasurePROUD {
				lb2, ub2 := e.proudBucketGap(pq, bk)
				skip = proud.PrefixDecide(lb2, 4*pq.varD*lb2, len(pq.vec), pq.varD, ub2-lb2, eps, epsLimit) == proud.Reject
			} else {
				skip = e.munichBucketPruned(pq, bk, eps)
			}
			if skip {
				tally.pruned++
				tally.skipped += int64(len(bk.Members))
				continue
			}
			tally.visited++
			for _, m := range bk.Members {
				ci := e.memberPos(m)
				if ci < 0 {
					continue
				}
				if ci == pq.self {
					sawSelf = true
					continue
				}
				flat = append(flat, probCand{q: q, ci: ci})
			}
		}
		tally.flush(e)
		e.selfFix(pq, sawSelf)
		part := flat[start:]
		slices.SortFunc(part, func(a, b probCand) int { return cmp.Compare(a.ci, b.ci) })
	}

	shardSize := e.opts.ShardSize
	numShards := (len(flat) + shardSize - 1) / shardSize
	accepted := make([]bool, len(flat))
	err := core.RunShardedCtx(ctx, numShards, 1, e.workersFor(pqs), func(lo, hi int) error {
		for shard := lo; shard < hi; shard++ {
			cLo, cHi := shard*shardSize, (shard+1)*shardSize
			if cHi > len(flat) {
				cHi = len(flat)
			}
			var skipped int64
			for i := cLo; i < cHi; i++ {
				it := flat[i]
				pq := pqs[it.q]
				var ok bool
				var err error
				if e.opts.Measure == MeasurePROUD {
					lb2, ub2 := e.proudMemberGap(pq, e.sketchRow(it.ci))
					if proud.PrefixDecide(lb2, 4*pq.varD*lb2, len(pq.vec), pq.varD, ub2-lb2, eps, epsLimit) == proud.Reject {
						skipped++
						continue
					}
					ok, err = e.proudAccept(pq, it.ci, eps, epsLimit, done)
				} else {
					ok, err = e.munichAccept(pq, it.ci, eps, tau, done)
				}
				if err != nil {
					return fmt.Errorf("engine: query %d candidate %d: %w", it.q, it.ci, err)
				}
				if ok {
					accepted[i] = true
					if emit != nil {
						if err := emit(it.q, it.ci); err != nil {
							return err
						}
					}
				}
			}
			e.seriesSkipped.Add(skipped)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([][]int, len(pqs))
	for i, it := range flat {
		if accepted[i] {
			out[it.q] = append(out[it.q], it.ci)
		}
	}
	return out, nil
}

// probTopKIndexed is the indexed counterpart of probTopKPrepared: buckets
// ranked by descending probability upper bound, skipped once the shared
// k-th best probability provably exceeds everything a bucket can hold. It
// runs the same seed-then-sweep schedule as topKIndexed: until k
// probabilities are on the heap the shared floor is trivial and nothing can
// be skipped, so the seed processes exactly the best few buckets serially
// per query before the coarse sharded sweep starts.
func (e *Engine) probTopKIndexed(ctx context.Context, pqs []*PreparedQuery, eps float64, k int) ([][]ProbMatch, error) {
	nb := len(e.idx.buckets)
	done := ctx.Done()
	plans, err := e.planBuckets(ctx, pqs,
		func(pq *PreparedQuery, bk sketch.Bucket) float64 { return e.bucketProbUB(pq, bk, eps) },
		func(a, b float64) bool { return a > b })
	if err != nil {
		return nil, err
	}
	bounds := make([]*sharedMaxBound, len(pqs))
	heaps := make([]*globalProbHeap, len(pqs))
	for q := range pqs {
		bounds[q] = pqs[q].probBoundRef()
		heaps[q] = &globalProbHeap{h: newProbHeap(k)}
	}
	buckets := make([][]ProbMatch, len(pqs)*nb)
	sawSelf := make([]bool, len(pqs))

	work := func(q, bi int, t *idxTally) error {
		pq := pqs[q]
		pl := plans[q][bi]
		bk := e.idx.buckets[pl.idx]
		if pl.bound < bounds[q].get()-probBoundMargin {
			t.pruned++
			t.skipped += int64(len(bk.Members))
			return nil
		}
		t.visited++
		var kept []ProbMatch
		for _, m := range bk.Members {
			ci := e.memberPos(m)
			if ci < 0 {
				continue
			}
			if ci == pq.self {
				sawSelf[q] = true
				continue
			}
			cut := bounds[q].get()
			if e.opts.Measure == MeasurePROUD {
				lb2, ub2 := e.proudMemberGap(pq, e.sketchRow(ci))
				pub := proud.ProbWithinUpper(lb2, 4*pq.varD*lb2, len(pq.vec), pq.varD, ub2-lb2, eps)
				if pub < cut-probBoundMargin {
					t.skipped++
					continue
				}
			}
			var p float64
			var ok bool
			var err error
			if e.opts.Measure == MeasurePROUD {
				p, ok, err = e.proudProb(pq, ci, eps, cut, done)
			} else {
				p, ok, err = e.munichProb(pq, ci, eps, cut, done)
			}
			if err != nil {
				return fmt.Errorf("engine: query %d candidate %d: %w", q, ci, err)
			}
			if !ok {
				continue
			}
			heaps[q].offer(p, bounds[q])
			if p < bounds[q].get()-probBoundMargin {
				continue
			}
			kept = append(kept, ProbMatch{ID: ci, Prob: p})
		}
		buckets[q*nb+bi] = kept
		return nil
	}

	seeds := seedCounts(plans, e.idx.buckets, k)
	err = core.RunShardedCtx(ctx, len(pqs), 1, e.workersFor(pqs), func(lo, hi int) error {
		var t idxTally
		for q := lo; q < hi; q++ {
			for bi := 0; bi < seeds[q]; bi++ {
				if err := work(q, bi, &t); err != nil {
					return err
				}
			}
		}
		t.flush(e)
		return nil
	})
	if err != nil {
		return nil, err
	}
	err = core.RunShardedCtx(ctx, len(pqs)*nb, 0, e.workersFor(pqs), func(lo, hi int) error {
		var t idxTally
		for item := lo; item < hi; item++ {
			q, bi := item/nb, item%nb
			if bi < seeds[q] {
				continue
			}
			if err := work(q, bi, &t); err != nil {
				return err
			}
		}
		t.flush(e)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for q, pq := range pqs {
		e.selfFix(pq, sawSelf[q])
	}

	out := make([][]ProbMatch, len(pqs))
	for q := range pqs {
		var all []ProbMatch
		for bi := 0; bi < nb; bi++ {
			all = append(all, buckets[q*nb+bi]...)
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].Prob != all[j].Prob {
				return all[i].Prob > all[j].Prob
			}
			return all[i].ID < all[j].ID
		})
		if k < len(all) {
			all = all[:k]
		}
		out[q] = all
	}
	return out, nil
}
