package engine

import (
	"math"
	"reflect"
	"sort"
	"testing"

	"uncertts/internal/core"
	"uncertts/internal/corpus"
	"uncertts/internal/munich"
	"uncertts/internal/proud"
	"uncertts/internal/query"
	"uncertts/internal/stats"
	"uncertts/internal/ucr"
	"uncertts/internal/uncertain"
)

// probWorkload builds a workload with the repeated-observation model so
// both probabilistic measures can run. The MUNICH refine step is the most
// expensive path in the test suite, so the workload stays small and the
// convolution estimator runs at reduced resolution (testMunichOpts) on
// both the engine and the naive reference.
func probWorkload(t testing.TB, series, length int) *core.Workload {
	t.Helper()
	ds, err := ucr.Generate("CBF", ucr.Options{MaxSeries: series, Length: length, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	pert, err := uncertain.NewConstantPerturber(uncertain.Normal, 0.2, length, 21)
	if err != nil {
		t.Fatal(err)
	}
	w, err := core.NewWorkload(ds, pert, core.WorkloadConfig{K: 5, SamplesPerTS: 3})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func testMunichOpts() munich.Options { return munich.Options{Bins: 512} }

// naiveProbs is the reference scan for ProbTopK: every pair probability
// computed exactly the way the naive matchers do, sorted by descending
// probability with ties broken by index.
func naiveProbs(t *testing.T, w *core.Workload, measure Measure, qi int, eps float64) []ProbMatch {
	t.Helper()
	var out []ProbMatch
	for ci := 0; ci < w.Len(); ci++ {
		if ci == qi {
			continue
		}
		var p float64
		switch measure {
		case MeasurePROUD:
			d, err := proud.Distance(w.PDF[qi].Observations, w.PDF[ci].Observations, w.ReportedSigma, w.ReportedSigma)
			if err != nil {
				t.Fatal(err)
			}
			p = d.ProbWithin(eps)
		case MeasureMUNICH:
			dec, err := munich.Prune(w.Samples[qi], w.Samples[ci], eps)
			if err != nil {
				t.Fatal(err)
			}
			switch dec {
			case munich.PruneAccept:
				p = 1
			case munich.PruneReject:
				p = 0
			default:
				p, err = munich.Probability(w.Samples[qi], w.Samples[ci], eps, testMunichOpts())
				if err != nil {
					t.Fatal(err)
				}
			}
		}
		out = append(out, ProbMatch{ID: ci, Prob: p})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Prob != out[j].Prob {
			return out[i].Prob > out[j].Prob
		}
		return out[i].ID < out[j].ID
	})
	return out
}

func probEngine(t *testing.T, w *core.Workload, measure Measure, workers int) *Engine {
	t.Helper()
	e, err := New(w, Options{Measure: measure, Workers: workers, ShardSize: 7, MUNICH: testMunichOpts()})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestProbRangeMatchesNaiveMatcherEveryWorkerCount(t *testing.T) {
	w := probWorkload(t, 24, 32)
	queries := []int{0, 7, 23}
	for _, tc := range []struct {
		measure Measure
		taus    []float64
	}{
		{MeasurePROUD, []float64{0.05, 0.5, 0.9}},
		{MeasureMUNICH, []float64{0.3, 0.5, 1}},
	} {
		for _, tau := range tc.taus {
			var naive core.Matcher
			if tc.measure == MeasurePROUD {
				naive = core.NewPROUDMatcher(tau)
			} else {
				naive = &core.MUNICHMatcher{Tau: tau, Opts: testMunichOpts()}
			}
			if err := naive.Prepare(w); err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, 8} {
				e := probEngine(t, w, tc.measure, workers)
				for _, qi := range queries {
					want, err := naive.Match(qi)
					if err != nil {
						t.Fatal(err)
					}
					got, err := e.ProbRange(qi, w.EpsEucl(qi), tau)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Errorf("%s: ProbRange(q=%d, tau=%g, workers=%d) = %v, want %v",
							tc.measure, qi, tau, workers, got, want)
					}
				}
			}
		}
	}
}

func TestProbTopKMatchesNaiveRankingEveryWorkerCount(t *testing.T) {
	w := probWorkload(t, 24, 32)
	for _, measure := range []Measure{MeasurePROUD, MeasureMUNICH} {
		for _, qi := range []int{0, 13} {
			eps := w.EpsEucl(qi)
			ref := naiveProbs(t, w, measure, qi, eps)
			for _, k := range []int{1, 5, 50} {
				want := ref
				if k < len(want) {
					want = want[:k]
				}
				for _, workers := range []int{1, 2, 8} {
					e := probEngine(t, w, measure, workers)
					got, err := e.ProbTopK(qi, eps, k)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Errorf("%s: ProbTopK(q=%d, k=%d, workers=%d) = %v, want %v",
							measure, qi, k, workers, got, want)
					}
				}
			}
		}
	}
}

// TestProbRangeMatchesNaiveAcrossEstimators pins bit-identity for the
// estimator configurations whose refine step is approximate (Monte Carlo,
// forced convolution) and for the exact-feasible regime where the
// sample-pair upper bound is live.
func TestProbRangeMatchesNaiveAcrossEstimators(t *testing.T) {
	cases := []struct {
		name    string
		series  int
		length  int
		samples int
		opts    munich.Options
	}{
		{"montecarlo", 18, 24, 3, munich.Options{Estimator: munich.EstimatorMonteCarlo, MonteCarloSamples: 300}},
		{"convolution", 18, 24, 3, munich.Options{Estimator: munich.EstimatorConvolution, Bins: 256}},
		// 2 samples x 12 timestamps: 4^6 combinations per half, exactly
		// countable, so Auto refines exactly and the sample-pair bound runs.
		{"exact-auto", 18, 12, 2, munich.Options{}},
		{"exact-forced", 18, 12, 2, munich.Options{Estimator: munich.EstimatorExact}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ds, err := ucr.Generate("CBF", ucr.Options{MaxSeries: tc.series, Length: tc.length, Seed: 33})
			if err != nil {
				t.Fatal(err)
			}
			pert, err := uncertain.NewConstantPerturber(uncertain.Normal, 0.25, tc.length, 33)
			if err != nil {
				t.Fatal(err)
			}
			w, err := core.NewWorkload(ds, pert, core.WorkloadConfig{K: 4, SamplesPerTS: tc.samples})
			if err != nil {
				t.Fatal(err)
			}
			for _, tau := range []float64{0.1, 0.5, 0.9} {
				naive := &core.MUNICHMatcher{Tau: tau, Opts: tc.opts}
				if err := naive.Prepare(w); err != nil {
					t.Fatal(err)
				}
				for _, workers := range []int{1, 8} {
					e, err := New(w, Options{Measure: MeasureMUNICH, Workers: workers, ShardSize: 5, MUNICH: tc.opts})
					if err != nil {
						t.Fatal(err)
					}
					for _, qi := range []int{0, 9, 17} {
						want, err := naive.Match(qi)
						if err != nil {
							t.Fatal(err)
						}
						got, err := e.ProbRange(qi, w.EpsEucl(qi), tau)
						if err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(got, want) {
							t.Errorf("tau=%g workers=%d q=%d: engine %v, naive %v", tau, workers, qi, got, want)
						}
					}
				}
			}
		})
	}
}

func TestProbRangeBatchMatchesSingleQueries(t *testing.T) {
	w := probWorkload(t, 24, 32)
	queries := []int{0, 5, 11, 23}
	eps := w.EpsEucl(0)
	for _, measure := range []Measure{MeasurePROUD, MeasureMUNICH} {
		e := probEngine(t, w, measure, 4)
		batch, err := e.ProbRangeBatch(queries, eps, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		for i, qi := range queries {
			single, err := e.ProbRange(qi, eps, 0.5)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(batch[i], single) {
				t.Errorf("%s: batch answer for query %d differs from single-query answer", measure, qi)
			}
		}
	}
}

// TestProbPruningResolvesMostCandidates is the acceptance bar of the
// probabilistic engine: identical answers to the unpruned arm, with more
// than half of the candidates resolved without the full refine step.
func TestProbPruningResolvesMostCandidates(t *testing.T) {
	w := probWorkload(t, 30, 48)
	queries := make([]int, w.Len())
	for i := range queries {
		queries[i] = i
	}
	eps := w.EpsEucl(0)
	for _, tc := range []struct {
		measure Measure
		tau     float64
	}{
		{MeasurePROUD, 0.05},
		{MeasureMUNICH, 0.5},
	} {
		pruned := probEngine(t, w, tc.measure, 0)
		naive, err := New(w, Options{Measure: tc.measure, ShardSize: 7, MUNICH: testMunichOpts(), NoPrune: true})
		if err != nil {
			t.Fatal(err)
		}
		wantRes, err := naive.ProbRangeBatch(queries, eps, tc.tau)
		if err != nil {
			t.Fatal(err)
		}
		gotRes, err := pruned.ProbRangeBatch(queries, eps, tc.tau)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotRes, wantRes) {
			t.Errorf("%s: pruned batch differs from the unpruned arm", tc.measure)
		}
		ps, ns := pruned.Stats(), naive.Stats()
		if ps.Candidates != ns.Candidates {
			t.Errorf("%s: candidate counts differ: %d vs %d", tc.measure, ps.Candidates, ns.Candidates)
		}
		if got := ps.Completed + ps.AbandonedEarly + ps.PrunedByEnvelope + ps.ResolvedByBounds + ps.ResolvedEarly; got != ps.Candidates {
			t.Errorf("%s: stats identity broken: %+v", tc.measure, ps)
		}
		if resolved := ps.Candidates - ps.Completed; 2*resolved <= ps.Candidates {
			t.Errorf("%s: only %d of %d candidates resolved without the full refine, want > half",
				tc.measure, resolved, ps.Candidates)
		}
	}
}

func TestProbValidation(t *testing.T) {
	w := probWorkload(t, 12, 16)
	// MUNICH needs the sample model: a workload built without SamplesPerTS
	// has no sample view in its corpus snapshot.
	ds, err := ucr.Generate("CBF", ucr.Options{MaxSeries: 12, Length: 16, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	pert, err := uncertain.NewConstantPerturber(uncertain.Normal, 0.2, 16, 21)
	if err != nil {
		t.Fatal(err)
	}
	noSamples, err := core.NewWorkload(ds, pert, core.WorkloadConfig{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(noSamples, Options{Measure: MeasureMUNICH}); err == nil {
		t.Error("MeasureMUNICH without samples should error")
	}
	// Probabilistic queries are rejected on distance measures and vice versa.
	de, err := New(w, Options{Measure: MeasureEuclidean})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := de.ProbRange(0, 1, 0.5); err == nil {
		t.Error("ProbRange on a distance measure should error")
	}
	if _, err := de.ProbTopK(0, 1, 3); err == nil {
		t.Error("ProbTopK on a distance measure should error")
	}
	pe, err := New(w, Options{Measure: MeasurePROUD})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pe.TopK(0, 3); err == nil {
		t.Error("TopK on a probabilistic measure should error")
	}
	if _, err := pe.Distance(0, 1); err == nil {
		t.Error("Distance on a probabilistic measure should error")
	}
	if _, err := pe.ProbRange(99, 1, 0.5); err == nil {
		t.Error("out-of-range query should error")
	}
	if _, err := pe.ProbRange(0, -1, 0.5); err == nil {
		t.Error("negative eps should error")
	}
	if _, err := pe.ProbRange(0, math.NaN(), 0.5); err == nil {
		t.Error("NaN eps should error")
	}
	if _, err := pe.ProbRange(0, 1, 0); err == nil {
		t.Error("PROUD tau=0 should error")
	}
	if _, err := pe.ProbRange(0, 1, 1); err == nil {
		t.Error("PROUD tau=1 should error")
	}
	if _, err := pe.ProbTopK(0, 1, 0); err == nil {
		t.Error("k=0 should error")
	}
	me, err := New(w, Options{Measure: MeasureMUNICH})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := me.ProbRange(0, 1, 0); err == nil {
		t.Error("MUNICH tau=0 should error")
	}
	if _, err := me.ProbRange(0, 1, 1.5); err == nil {
		t.Error("MUNICH tau>1 should error")
	}
	if _, err := me.ProbRange(0, 1, 1); err != nil {
		t.Errorf("MUNICH tau=1 is valid: %v", err)
	}
}

// duplicateWorkload hand-builds a workload where series 0-3 are exact
// duplicates: the adversarial input for zero-distance tie handling.
func duplicateWorkload(t *testing.T) *corpus.Snapshot {
	t.Helper()
	const n = 16
	base := make([]float64, n)
	rng := stats.NewRand(5)
	for i := range base {
		base[i] = rng.NormFloat64()
	}
	c := corpus.New(corpus.Config{ReportedSigma: 0.1})
	for id := 0; id < 10; id++ {
		vals := make([]float64, n)
		copy(vals, base)
		if id >= 4 {
			// Distinct tail series, still close enough to be candidates.
			for i := range vals {
				vals[i] += float64(id) * 0.3 * float64(i%3)
			}
		}
		if _, err := c.Insert(corpus.Series{Values: vals}); err != nil {
			t.Fatal(err)
		}
	}
	return c.Snapshot()
}

// TestZeroDistanceTies is the ulpUp regression test: with exact-duplicate
// series the k-th best distance — and therefore the pruning cutoff — is
// exactly zero, and the absolute floor must keep the remaining duplicates
// from being excluded by their own tie.
func TestZeroDistanceTies(t *testing.T) {
	snap := duplicateWorkload(t)
	for _, opts := range []Options{
		{Measure: MeasureEuclidean, ShardSize: 3},
		{Measure: MeasureDTW, Band: 3, ShardSize: 3},
	} {
		e, err := NewFromSnapshot(snap, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{2, 3, 5} {
			want := naiveTopK(t, e, 0, k)
			got, err := e.TopK(0, k)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s: TopK(0, %d) over duplicates = %v, want %v", opts.Measure, k, got, want)
			}
		}
		// Range with eps = 0 must return exactly the duplicates.
		got, err := e.Range(0, 0)
		if err != nil {
			t.Fatal(err)
		}
		want, err := query.RangeQueryFunc(snap.Len(), 0, func(ci int) (float64, error) {
			return e.Distance(0, ci)
		}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: Range(0, 0) = %v, want %v", opts.Measure, got, want)
		}
		if len(got) != 3 {
			t.Errorf("%s: Range(0, 0) = %v, want the 3 duplicates", opts.Measure, got)
		}
	}
}

func TestUlpUpFloor(t *testing.T) {
	if ulpUp(0) <= 0 {
		t.Error("ulpUp(0) must be strictly positive")
	}
	if v := 2.5; ulpUp(v) <= v {
		t.Error("ulpUp must strictly inflate positive values")
	}
}
