package engine

import (
	"context"
	"encoding/json"
	"reflect"
	"sort"
	"testing"

	"uncertts/internal/corpus"
	"uncertts/internal/query"
)

// TestStatsJSONRoundTrip pins the wire-stable JSON shape of engine.Stats:
// every counter round-trips through explicit snake_case keys, so shard
// responses can carry stats across processes without drift.
func TestStatsJSONRoundTrip(t *testing.T) {
	in := Stats{
		Candidates:           1,
		Completed:            2,
		AbandonedEarly:       3,
		PrunedByEnvelope:     4,
		ResolvedByBounds:     5,
		ResolvedEarly:        6,
		BucketsVisited:       7,
		BucketsPruned:        8,
		SeriesSkippedByIndex: 9,
	}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Stats
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip changed the stats: %+v != %+v", out, in)
	}

	var keys map[string]int64
	if err := json.Unmarshal(b, &keys); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"abandoned_early", "buckets_pruned", "buckets_visited", "candidates",
		"completed", "pruned_by_envelope", "resolved_by_bounds",
		"resolved_early", "series_skipped_by_index",
	}
	got := make([]string, 0, len(keys))
	for k := range keys {
		got = append(got, k)
	}
	sort.Strings(got)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Stats JSON keys drifted:\n got %v\nwant %v", got, want)
	}
	if n := reflect.TypeOf(Stats{}).NumField(); n != len(want) {
		t.Fatalf("Stats has %d fields but the wire shape pins %d — tag the new field and extend this test", n, len(want))
	}
}

// shardCorpora splits the deterministic test series into nShards corpora by
// round-robin over the global ID (the cluster's ShardFor is a hash, but any
// disjoint cover works for the engine-level argument), inserting with
// explicit IDs so each shard entry keeps its global identity.
func shardCorpora(t *testing.T, series, length, nShards int) []*corpus.Corpus {
	t.Helper()
	out := make([]*corpus.Corpus, nShards)
	for s := range out {
		out[s] = corpus.New(corpus.Config{ReportedSigma: 0.3, Segments: 4})
		var batch []corpus.Series
		var ids []int
		for id := 0; id < series; id++ {
			if id%nShards != s {
				continue
			}
			batch = append(batch, corpusSeries(length, int64(id)))
			ids = append(ids, id)
		}
		if _, err := out[s].ApplyAt(batch, ids, nil); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// TestSharedBoundShardParity runs the same top-k query through per-shard
// engines sharing one injected Bound and checks that the merged answer is
// bit-identical to a single engine over the whole corpus — for every
// measure, kind and shard count the bound applies to.
func TestSharedBoundShardParity(t *testing.T) {
	const nSeries, length, k, eps = 30, 32, 5, 2.5
	whole := testCorpus(t, nSeries, length)
	adhoc := adhocQueryFor(length)
	for _, opts := range allMeasureOptions() {
		opts := opts
		single, err := NewFromSnapshot(whole.Snapshot(), opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, nShards := range []int{1, 2, 4} {
			shards := shardCorpora(t, nSeries, length, nShards)
			if opts.Measure.Probabilistic() {
				ref, err := single.Run(context.Background(), Request{
					Measure: opts.Measure, Kind: KindProbTopK, AdHoc: &adhoc, K: k, Eps: eps,
				})
				if err != nil {
					t.Fatal(err)
				}
				pb := NewProbBound()
				var merged []ProbMatch
				for _, sc := range shards {
					e, err := NewFromSnapshot(sc.Snapshot(), opts)
					if err != nil {
						t.Fatal(err)
					}
					res, err := e.Run(context.Background(), Request{
						Measure: opts.Measure, Kind: KindProbTopK, AdHoc: &adhoc, K: k, Eps: eps, ProbBound: pb,
					})
					if err != nil {
						t.Fatal(err)
					}
					snap := sc.Snapshot()
					for _, m := range res.Matches {
						merged = append(merged, ProbMatch{ID: snap.IDAt(m.ID), Prob: m.Prob})
					}
				}
				sort.Slice(merged, func(i, j int) bool {
					if merged[i].Prob != merged[j].Prob {
						return merged[i].Prob > merged[j].Prob
					}
					return merged[i].ID < merged[j].ID
				})
				if len(merged) > k {
					merged = merged[:k]
				}
				if !reflect.DeepEqual(merged, ref.Matches) {
					t.Errorf("%v probtopk across %d shards diverged:\n got %v\nwant %v", opts.Measure, nShards, merged, ref.Matches)
				}
				continue
			}
			ref, err := single.Run(context.Background(), Request{
				Measure: opts.Measure, Kind: KindTopK, AdHoc: &adhoc, K: k,
			})
			if err != nil {
				t.Fatal(err)
			}
			bnd := NewBound()
			var merged []query.Neighbor
			for _, sc := range shards {
				e, err := NewFromSnapshot(sc.Snapshot(), opts)
				if err != nil {
					t.Fatal(err)
				}
				res, err := e.Run(context.Background(), Request{
					Measure: opts.Measure, Kind: KindTopK, AdHoc: &adhoc, K: k, Bound: bnd,
				})
				if err != nil {
					t.Fatal(err)
				}
				snap := sc.Snapshot()
				for _, n := range res.Neighbors {
					merged = append(merged, query.Neighbor{ID: snap.IDAt(n.ID), Distance: n.Distance})
				}
			}
			sort.Slice(merged, func(i, j int) bool {
				if merged[i].Distance != merged[j].Distance {
					return merged[i].Distance < merged[j].Distance
				}
				return merged[i].ID < merged[j].ID
			})
			if len(merged) > k {
				merged = merged[:k]
			}
			if !reflect.DeepEqual(merged, ref.Neighbors) {
				t.Errorf("%v topk across %d shards diverged:\n got %v\nwant %v", opts.Measure, nShards, merged, ref.Neighbors)
			}
		}
	}
}

// TestSharedBoundTightensPruning runs two shard engines sequentially at one
// worker — so the arithmetic is deterministic — once with fresh private
// bounds and once sharing an injected Bound. The shared arm must complete
// strictly fewer full distance computations: the first shard's k-th best
// seeds the second shard's cut from candidate zero.
func TestSharedBoundTightensPruning(t *testing.T) {
	const nSeries, length, k = 80, 48, 3
	shards := shardCorpora(t, nSeries, length, 2)
	adhoc := adhocQueryFor(length)
	opts := Options{Measure: MeasureEuclidean, Workers: 1}

	run := func(shared bool) int64 {
		var bnd *Bound
		if shared {
			bnd = NewBound()
		}
		var completed int64
		for _, sc := range shards {
			e, err := NewFromSnapshot(sc.Snapshot(), opts)
			if err != nil {
				t.Fatal(err)
			}
			req := Request{Kind: KindTopK, AdHoc: &adhoc, K: k, Workers: 1, Bound: bnd}
			if _, err := e.Run(context.Background(), req); err != nil {
				t.Fatal(err)
			}
			completed += e.Stats().Completed
		}
		return completed
	}

	private, propagated := run(false), run(true)
	if propagated >= private {
		t.Fatalf("bound propagation did not tighten pruning: %d completed with a shared bound, %d without", propagated, private)
	}
}
