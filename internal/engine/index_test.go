package engine

import (
	"fmt"
	"reflect"
	"testing"

	"uncertts/internal/corpus"
	"uncertts/internal/munich"
)

// indexCorpusConfig is the geometry the index tests pin: a tiny leaf
// capacity so even a few dozen series split into many buckets, and a
// segment count the MUNICH engines below match.
func indexCorpusConfig() corpus.Config {
	return corpus.Config{ReportedSigma: 0.3, Segments: 4, SketchLeafCap: 4}
}

// indexMeasureOptions mirrors allMeasureOptions with every measure
// configured to match the corpus geometry, so the index engages for all of
// them (except DUST, which has no sketch bound).
func indexMeasureOptions() []Options {
	return []Options{
		{Measure: MeasureEuclidean, ShardSize: 5},
		{Measure: MeasureUMA, ShardSize: 5},
		{Measure: MeasureUEMA, ShardSize: 5},
		{Measure: MeasureDTW, Band: 3, ShardSize: 5},
		{Measure: MeasureDUST, ShardSize: 5},
		{Measure: MeasurePROUD, ShardSize: 5},
		{Measure: MeasureMUNICH, ShardSize: 5, Segments: 4, MUNICH: munich.Options{Bins: 256}},
	}
}

// runIndexQuery executes the measure-appropriate index queries and returns
// a comparable result value.
func runIndexQuery(t testing.TB, e *Engine, qi int, eps float64) interface{} {
	t.Helper()
	if e.Measure().Probabilistic() {
		rng, err := e.ProbRange(qi, eps, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		top, err := e.ProbTopK(qi, eps, 4)
		if err != nil {
			t.Fatal(err)
		}
		return []interface{}{rng, top}
	}
	nn, err := e.TopK(qi, 5)
	if err != nil {
		t.Fatal(err)
	}
	rng, err := e.Range(qi, eps)
	if err != nil {
		t.Fatal(err)
	}
	return []interface{}{nn, rng}
}

// TestIndexedParityAllMeasures is the tentpole's bit-identity property: an
// engine routed through the sketch index and an engine forced onto the
// linear scan must return exactly the same answers — same positions, same
// float64 bits — for every measure, every worker count, index and ad-hoc
// queries, over dense, sparse and freshly compacted snapshots.
func TestIndexedParityAllMeasures(t *testing.T) {
	const n, length = 30, 32
	c := corpus.New(indexCorpusConfig())
	batch := make([]corpus.Series, n)
	for i := range batch {
		batch[i] = corpusSeries(length, int64(i))
	}
	if _, err := c.InsertBatch(batch); err != nil {
		t.Fatal(err)
	}
	dense := c.Snapshot()
	if _, ok := dense.Columns(); !ok {
		t.Fatal("insert-only snapshot is not dense")
	}
	// Two sacrificial inserts plus deletes leave the arena sparse (2 dead
	// of 32 rows stays under the compaction threshold).
	extra, err := c.InsertBatch([]corpus.Series{corpusSeries(length, 500), corpusSeries(length, 501)})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(extra...); err != nil {
		t.Fatal(err)
	}
	sparse := c.Snapshot()
	if _, ok := sparse.Columns(); ok {
		t.Fatal("post-delete snapshot is unexpectedly dense")
	}
	// Twelve more sacrificial inserts deleted at once push past the
	// quarter-dead threshold and force a compaction (and the bulk tree
	// rebuild that rides along).
	extra2 := make([]corpus.Series, 12)
	for i := range extra2 {
		extra2[i] = corpusSeries(length, int64(600+i))
	}
	ids2, err := c.InsertBatch(extra2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(ids2...); err != nil {
		t.Fatal(err)
	}
	compacted := c.Snapshot()
	if _, ok := compacted.Columns(); !ok {
		t.Fatal("deletes past the threshold did not compact")
	}

	adhoc := adhocQueryFor(length)
	const eps = 2.5
	for _, snapCase := range []struct {
		name string
		snap *corpus.Snapshot
	}{{"dense", dense}, {"sparse", sparse}, {"compacted", compacted}} {
		for _, base := range indexMeasureOptions() {
			for _, workers := range []int{1, 2, 8} {
				idxOpts := base
				idxOpts.Workers = workers
				idxOpts.IndexThreshold = -1
				linOpts := idxOpts
				linOpts.NoIndex = true
				ei, err := NewFromSnapshot(snapCase.snap, idxOpts)
				if err != nil {
					t.Fatalf("%s/%s/w=%d: indexed engine: %v", snapCase.name, base.Measure, workers, err)
				}
				el, err := NewFromSnapshot(snapCase.snap, linOpts)
				if err != nil {
					t.Fatalf("%s/%s/w=%d: linear engine: %v", snapCase.name, base.Measure, workers, err)
				}
				if want := base.Measure != MeasureDUST; ei.Indexed() != want {
					t.Fatalf("%s/%s: Indexed() = %v, want %v", snapCase.name, base.Measure, ei.Indexed(), want)
				}
				if el.Indexed() {
					t.Fatalf("%s/%s: NoIndex engine reports Indexed()", snapCase.name, base.Measure)
				}
				for _, qi := range []int{0, 7, 29} {
					got := runIndexQuery(t, ei, qi, eps)
					want := runIndexQuery(t, el, qi, eps)
					if !reflect.DeepEqual(got, want) {
						t.Errorf("%s/%s/w=%d q=%d: indexed %v != linear %v", snapCase.name, base.Measure, workers, qi, got, want)
					}
				}
				ipq, err := ei.Prepare(adhoc)
				if err != nil {
					t.Fatal(err)
				}
				lpq, err := el.Prepare(adhoc)
				if err != nil {
					t.Fatal(err)
				}
				got := runPrepared(t, ei, ipq, eps)
				want := runPrepared(t, el, lpq, eps)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s/%s/w=%d: ad-hoc indexed answer differs from linear", snapCase.name, base.Measure, workers)
				}
			}
		}
	}
}

// TestIndexedStatsIdentity checks the extended accounting of index queries:
// Candidates still equals the sum of the resolution counters, and every
// candidate the linear scan would have examined is either examined or
// accounted to SeriesSkippedByIndex.
func TestIndexedStatsIdentity(t *testing.T) {
	const n, length, queries = 64, 32, 10
	c := corpus.New(indexCorpusConfig())
	batch := make([]corpus.Series, n)
	for i := range batch {
		batch[i] = corpusSeries(length, int64(i))
	}
	if _, err := c.InsertBatch(batch); err != nil {
		t.Fatal(err)
	}
	snap := c.Snapshot()
	qis := make([]int, queries)
	for i := range qis {
		qis[i] = i
	}
	for _, base := range indexMeasureOptions() {
		if base.Measure == MeasureDUST {
			continue
		}
		opts := base
		opts.IndexThreshold = -1
		e, err := NewFromSnapshot(snap, opts)
		if err != nil {
			t.Fatal(err)
		}
		if base.Measure.Probabilistic() {
			if _, err := e.ProbTopKBatch(qis, 2.0, 3); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := e.TopKBatch(qis, 3); err != nil {
				t.Fatal(err)
			}
		}
		s := e.Stats()
		if sum := s.Completed + s.AbandonedEarly + s.PrunedByEnvelope + s.ResolvedByBounds + s.ResolvedEarly; sum != s.Candidates {
			t.Errorf("%s: resolution counters sum to %d, want Candidates %d", base.Measure, sum, s.Candidates)
		}
		if total := s.Candidates + s.SeriesSkippedByIndex; total != int64(queries*(n-1)) {
			t.Errorf("%s: Candidates %d + SeriesSkippedByIndex %d = %d, want %d",
				base.Measure, s.Candidates, s.SeriesSkippedByIndex, total, queries*(n-1))
		}
		if s.BucketsVisited == 0 {
			t.Errorf("%s: no buckets visited on an indexed engine", base.Measure)
		}
		if base.Measure == MeasureEuclidean && s.SeriesSkippedByIndex == 0 {
			t.Errorf("Euclidean top-k skipped no series through the index")
		}
	}
}

// TestIndexChurnParity is the incremental-maintenance property: after every
// mutation of an interleaved insert/delete workload (crossing at least one
// compaction), the incrementally maintained index answers bit-identically
// to a bulk-built index over a restored copy of the same snapshot, and to
// the linear scan.
func TestIndexChurnParity(t *testing.T) {
	const length = 24
	c := corpus.New(indexCorpusConfig())
	sawSparse, sawCompaction := false, false
	next := 0
	var live []int
	for step := 0; step < 8; step++ {
		batch := make([]corpus.Series, 6)
		for i := range batch {
			batch[i] = corpusSeries(length, int64(next))
			next++
		}
		var del []int
		if step >= 2 {
			// Delete four of the oldest survivors; every few steps this
			// pushes the dead-row ratio past the compaction threshold.
			del = append(del, live[:4]...)
			live = live[4:]
		}
		ids, err := c.Apply(batch, del)
		if err != nil {
			t.Fatal(err)
		}
		live = append(live, ids...)

		snap := c.Snapshot()
		if _, dense := snap.Columns(); dense {
			if sawSparse {
				sawCompaction = true
			}
		} else {
			sawSparse = true
		}
		if snap.Index() == nil || snap.Index().Len() != snap.Len() {
			t.Fatalf("step %d: index tracks %v members, snapshot holds %d", step, snap.Index(), snap.Len())
		}

		// A restored corpus bulk-builds its index from scratch over the
		// same resident series in the same position order.
		recs := make([]corpus.RestoredSeries, snap.Len())
		for i := 0; i < snap.Len(); i++ {
			ent := snap.Entry(i)
			s := corpus.Series{Values: ent.PDF.Observations}
			if ent.Samples != nil {
				s.Samples = ent.Samples.Samples
			}
			recs[i] = corpus.RestoredSeries{ID: ent.ID, Series: s}
		}
		restored, err := corpus.Restore(snap.Config(), recs, snap.NextID(), snap.Epoch())
		if err != nil {
			t.Fatal(err)
		}
		rsnap := restored.Snapshot()

		for _, base := range indexMeasureOptions() {
			opts := base
			opts.IndexThreshold = -1
			linOpts := opts
			linOpts.NoIndex = true
			inc, err := NewFromSnapshot(snap, opts)
			if err != nil {
				t.Fatalf("step %d %s: %v", step, base.Measure, err)
			}
			bulk, err := NewFromSnapshot(rsnap, opts)
			if err != nil {
				t.Fatalf("step %d %s: %v", step, base.Measure, err)
			}
			lin, err := NewFromSnapshot(snap, linOpts)
			if err != nil {
				t.Fatalf("step %d %s: %v", step, base.Measure, err)
			}
			for _, qi := range []int{0, snap.Len() / 2} {
				got := runIndexQuery(t, inc, qi, 2.5)
				want := runIndexQuery(t, lin, qi, 2.5)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("step %d %s q=%d: incremental index %v != linear %v", step, base.Measure, qi, got, want)
				}
				fresh := runIndexQuery(t, bulk, qi, 2.5)
				if !reflect.DeepEqual(fresh, want) {
					t.Errorf("step %d %s q=%d: bulk-rebuilt index %v != linear %v", step, base.Measure, qi, fresh, want)
				}
			}
		}
	}
	if !sawSparse || !sawCompaction {
		t.Fatalf("churn never exercised both arena states (sparse=%v, compaction=%v)", sawSparse, sawCompaction)
	}
}

// TestIndexFallbacks enumerates the configurations that must fall back to
// the linear scan.
func TestIndexFallbacks(t *testing.T) {
	c := testCorpus(t, 16, 32) // default sketch knobs, cfg.Segments = 4
	snap := c.Snapshot()
	cases := []struct {
		name string
		opts Options
	}{
		{"below default threshold", Options{Measure: MeasureEuclidean}},
		{"NoIndex", Options{Measure: MeasureEuclidean, NoIndex: true, IndexThreshold: -1}},
		{"NoPrune", Options{Measure: MeasureEuclidean, NoPrune: true, IndexThreshold: -1}},
		{"DUST has no sketch bound", Options{Measure: MeasureDUST, IndexThreshold: -1}},
		{"DTW band mismatch", Options{Measure: MeasureDTW, Band: 7, IndexThreshold: -1}},
		{"UEMA lambda mismatch", Options{Measure: MeasureUEMA, Lambda: 0.5, IndexThreshold: -1}},
		{"MUNICH segment mismatch", Options{Measure: MeasureMUNICH, Segments: 8, IndexThreshold: -1, MUNICH: munich.Options{Bins: 256}}},
	}
	for _, tc := range cases {
		e, err := NewFromSnapshot(snap, tc.opts)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if e.Indexed() {
			t.Errorf("%s: engine unexpectedly indexed", tc.name)
		}
	}
	e, err := NewFromSnapshot(snap, Options{Measure: MeasureEuclidean, IndexThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !e.Indexed() {
		t.Error("negative IndexThreshold did not engage the index")
	}
	// Results through a fallback engine still match: the sanity anchor for
	// every case above.
	want := fmt.Sprintf("%v", runIndexQuery(t, e, 0, 2.5))
	for _, tc := range cases[:3] {
		el, err := NewFromSnapshot(snap, tc.opts)
		if err != nil {
			t.Fatal(err)
		}
		if got := fmt.Sprintf("%v", runIndexQuery(t, el, 0, 2.5)); got != want {
			t.Errorf("%s: fallback answer %s != indexed %s", tc.name, got, want)
		}
	}
}
