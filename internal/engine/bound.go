package engine

import "math"

// Bound is an externally shared, monotonically tightening upper bound on
// the k-th best distance of one top-k query — the cluster-facing handle
// over the same atomic cut the workers of a single engine coordinate
// through. Injecting one Bound into the Requests of several engines (one
// per cluster shard, each scanning its own corpus partition) makes every
// shard's early-abandon cascade cut against the global k-th distance as
// it tightens mid-flight, not just its local one.
//
// Soundness: each published value is a proven upper bound on the global
// k-th best distance (the k-th best of any subset is an upper bound on
// the k-th best of the whole), values only ever decrease, and every
// published square is inflated by ulpUp — so a candidate is abandoned
// only when it is strictly beyond the global k-th, never when it ties
// it. Results therefore stay bit-identical to a single-corpus scan.
//
// The zero value is not ready; use NewBound. All methods are safe for
// concurrent use.
type Bound struct{ sb sharedBound }

// NewBound returns a bound at +Inf (nothing proven yet).
func NewBound() *Bound {
	b := &Bound{}
	b.sb.bits.Store(math.Float64bits(math.Inf(1)))
	return b
}

// Squared returns the current bound in squared-distance space (+Inf
// until first lowered). This is the wire value cluster nodes exchange.
func (b *Bound) Squared() float64 { return b.sb.get() }

// LowerSquared publishes a squared-space bound if it improves
// (decreases) the current one — the ingest side of the wire exchange.
// The value must already carry its ulpUp safety margin, i.e. come from
// Squared() of another Bound (or ObserveKth).
func (b *Bound) LowerSquared(v float64) { b.sb.lower(v) }

// ObserveKth lowers the bound from a proven k-th best distance d (linear
// space): the merge side calls it whenever its global result heap fills
// or tightens. The published square is ulpUp-inflated so exact ties at d
// survive on every shard.
func (b *Bound) ObserveKth(d float64) { b.sb.lower(ulpUp(d * d)) }

// ProbBound is the probabilistic-top-k mirror of Bound: a monotonically
// rising lower bound on the k-th best match probability. Shards abandon
// a candidate once its probability upper bound falls below the global
// k-th best probability; the probBoundMargin inside the kernels keeps
// exact ties alive, so merged results stay bit-identical.
//
// The zero value is not ready; use NewProbBound.
type ProbBound struct{ sb sharedMaxBound }

// NewProbBound returns a bound at -Inf (nothing proven yet).
func NewProbBound() *ProbBound {
	b := &ProbBound{}
	b.sb.bits.Store(math.Float64bits(math.Inf(-1)))
	return b
}

// Value returns the current lower bound on the k-th best probability
// (-Inf until first raised) — the wire value cluster nodes exchange.
func (b *ProbBound) Value() float64 { return b.sb.get() }

// Raise publishes v if it improves (increases) the bound. v must be a
// proven k-th best probability of some subset of the corpus — e.g. the
// k-th best of a shard's local heap, or of the coordinator's merged
// heap.
func (b *ProbBound) Raise(v float64) { b.sb.raise(v) }

// boundRef resolves the shared cut a top-k execution coordinates
// through: the externally injected Bound when the request carries one,
// a fresh private cut otherwise.
func (pq *PreparedQuery) boundRef() *sharedBound {
	if pq.Bound != nil {
		return &pq.Bound.sb
	}
	return newSharedBound()
}

// probBoundRef is boundRef for probabilistic top-k.
func (pq *PreparedQuery) probBoundRef() *sharedMaxBound {
	if pq.ProbBound != nil {
		return &pq.ProbBound.sb
	}
	return newSharedMaxBound()
}
