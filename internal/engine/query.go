package engine

import (
	"context"
	"errors"
	"fmt"
	"math"

	"uncertts/internal/distance"
	"uncertts/internal/munich"
	"uncertts/internal/proud"
	"uncertts/internal/qerr"
	"uncertts/internal/query"
	"uncertts/internal/sketch"
	"uncertts/internal/stats"
	"uncertts/internal/timeseries"
	"uncertts/internal/uncertain"
)

// Query is an ad-hoc query series: an arbitrary uncertain series, not
// necessarily resident in any corpus, posed against the engine's snapshot.
// Which fields are required depends on the engine's measure:
//
//   - Euclidean, UMA, UEMA, DTW, PROUD, DUST need Values;
//   - MUNICH needs Samples;
//   - Errors refines DUST's query-side error model and the UMA/UEMA filter
//     weights (nil adopts the snapshot's reported error model);
//   - Sigma overrides the constant error stddev PROUD assumes for the
//     query side and, when Errors is nil, the filter weights (0 adopts the
//     snapshot's reported sigma).
type Query struct {
	// Values holds one observed value per timestamp.
	Values []float64
	// Errors optionally attaches per-timestamp error distributions.
	Errors []stats.Dist
	// Sigma optionally overrides the constant error stddev of the query.
	Sigma float64
	// Samples optionally attaches the repeated-observation model
	// (required for MeasureMUNICH).
	Samples [][]float64
}

// PreparedQuery is a query bound to an engine with all its derived state
// precomputed: the measure-specific scan vector (filtered series for
// UMA/UEMA), the query-side error model for DUST, suffix energies and the
// moment variance for PROUD, the sample model and segment envelope for
// MUNICH. Preparing once and querying many times amortises that setup; a
// PreparedQuery is safe for concurrent use.
type PreparedQuery struct {
	// Workers optionally overrides the engine's worker budget for
	// requests issued through this query (0 = the engine default). The
	// server sets it per HTTP request.
	Workers int
	// Bound optionally shares a top-k pruning cut with executions outside
	// this engine — cluster shards running the same query inject one
	// Bound into every shard's request so the global k-th distance
	// tightens each shard's cascade mid-flight. Nil (the default) keeps
	// the cut private to the execution. Only KindTopK consults it.
	Bound *Bound
	// ProbBound is Bound for KindProbTopK (rising k-th best probability).
	ProbBound *ProbBound

	e    *Engine
	self int // snapshot position to exclude (-1 for ad-hoc queries)

	vec    []float64              // scan vector (lock-step measures, DTW, PROUD)
	qpaa   []float64              // PAA of vec over the sketch layout (indexed engines)
	qenvLo []float64              // PAA of the query's lower DTW envelope (indexed DTW)
	qenvHi []float64              // PAA of the query's upper DTW envelope (indexed DTW)
	pdf    uncertain.PDFSeries    // query-side error model (DUST)
	suffix []float64              // query suffix energies (PROUD)
	varD   float64                // per-timestamp D_i variance sum (PROUD)
	sample uncertain.SampleSeries // repeated-observation model (MUNICH)
	env    munich.Envelope        // query segment envelope (MUNICH)
}

// PrepareIndex binds the resident series at snapshot position qi as a
// query. All derived state aliases the engine's precomputed artifacts, so
// preparation is allocation-free on the hot fields; results exclude the
// series itself, exactly as the index-based query methods do.
func (e *Engine) PrepareIndex(qi int) (*PreparedQuery, error) {
	if err := e.checkIndex(qi); err != nil {
		return nil, err
	}
	pq := &PreparedQuery{e: e, self: qi}
	ent := e.snap.Entry(qi)
	switch e.opts.Measure {
	case MeasureEuclidean, MeasureUMA, MeasureUEMA, MeasureDTW:
		pq.vec = e.vecs.at(qi)
	case MeasureDUST:
		pq.pdf = ent.PDF
	case MeasurePROUD:
		pq.vec = e.vecs.at(qi)
		pq.suffix = e.suffix.at(qi)
		pq.varD = e.varD
	case MeasureMUNICH:
		pq.sample = *ent.Samples
		pq.env = e.envs[qi]
	}
	if e.idx != nil && pq.vec != nil {
		pq.qpaa = sketch.PAA(pq.vec, e.idx.lay.Spans)
		if e.opts.Measure == MeasureDTW {
			up, lo := distance.Envelope(pq.vec, e.band)
			pq.qenvHi = sketch.PAA(up, e.idx.lay.Spans)
			pq.qenvLo = sketch.PAA(lo, e.idx.lay.Spans)
		}
	}
	return pq, nil
}

func (e *Engine) prepareIndexBatch(queries []int) ([]*PreparedQuery, error) {
	pqs := make([]*PreparedQuery, len(queries))
	for i, qi := range queries {
		pq, err := e.PrepareIndex(qi)
		if err != nil {
			return nil, err
		}
		pqs[i] = pq
	}
	return pqs, nil
}

// Prepare binds an ad-hoc series as a query against the engine's snapshot,
// computing the measure-specific derived state once. The returned query
// never excludes a candidate (it is not resident), and may be reused for
// any number of requests.
func (e *Engine) Prepare(q Query) (*PreparedQuery, error) {
	n := e.snap.SeriesLen()
	pq := &PreparedQuery{e: e, self: -1}
	needValues := e.opts.Measure != MeasureMUNICH
	if needValues && len(q.Values) != n {
		return nil, fmt.Errorf("engine: %w", qerr.LengthMismatchf("query has %d values, snapshot series have %d", len(q.Values), n))
	}
	if q.Errors != nil && len(q.Errors) != n {
		return nil, fmt.Errorf("engine: %w", qerr.LengthMismatchf("query has %d error distributions, want %d", len(q.Errors), n))
	}
	if q.Sigma < 0 || math.IsNaN(q.Sigma) {
		return nil, fmt.Errorf("engine: %w", qerr.BadRequestf("query sigma %v must be non-negative", q.Sigma))
	}

	switch e.opts.Measure {
	case MeasureEuclidean, MeasureDTW:
		pq.vec = append([]float64(nil), q.Values...)
	case MeasureUMA, MeasureUEMA:
		sigmas := e.querySigmas(q)
		var f []float64
		var err error
		if e.opts.Measure == MeasureUMA {
			f, err = timeseries.UncertainMovingAverage(q.Values, sigmas, e.opts.W, e.opts.Mode)
		} else {
			f, err = timeseries.UncertainExponentialMovingAverage(q.Values, sigmas, e.opts.W, e.opts.Lambda, e.opts.Mode)
		}
		if err != nil {
			return nil, fmt.Errorf("engine: filtering query: %w", err)
		}
		pq.vec = f
	case MeasureDUST:
		errs := q.Errors
		if errs == nil && q.Sigma > 0 {
			// A constant sigma is a full error model for DUST: Normal(0,
			// sigma) per timestamp, matching what ingesting the series with
			// that sigma would have attached. The cluster coordinator leans
			// on this to forward a resident query series to remote shards
			// as values+sigma without losing the error model.
			d := stats.NewNormal(0, q.Sigma)
			errs = make([]stats.Dist, n)
			for i := range errs {
				errs[i] = d
			}
		}
		if errs == nil {
			errs = e.snap.DefaultErrors()
		}
		pq.pdf = uncertain.PDFSeries{Observations: append([]float64(nil), q.Values...), Errors: errs, ID: -1}
		if err := pq.pdf.Validate(); err != nil {
			return nil, fmt.Errorf("engine: %w", err)
		}
	case MeasurePROUD:
		pq.vec = append([]float64(nil), q.Values...)
		pq.suffix = proud.SuffixEnergy(pq.vec)
		qSigma := q.Sigma
		if qSigma == 0 {
			qSigma = e.snap.ReportedSigma()
		}
		cSigma := e.snap.ReportedSigma()
		pq.varD = qSigma*qSigma + cSigma*cSigma
	case MeasureMUNICH:
		if q.Samples == nil {
			return nil, fmt.Errorf("engine: %w", qerr.BadRequestf("MeasureMUNICH queries need a sample model (Query.Samples)"))
		}
		if len(q.Samples) != n {
			return nil, fmt.Errorf("engine: %w", qerr.LengthMismatchf("query sample model has %d timestamps, want %d", len(q.Samples), n))
		}
		pq.sample = uncertain.SampleSeries{Samples: q.Samples, ID: -1}
		if err := pq.sample.Validate(); err != nil {
			return nil, fmt.Errorf("engine: %w", err)
		}
		pq.env = munich.BuildEnvelope(pq.sample, e.segments)
	default:
		return nil, fmt.Errorf("engine: %w: %v", qerr.ErrUnknownMeasure, e.opts.Measure)
	}
	if e.idx != nil && pq.vec != nil {
		pq.qpaa = sketch.PAA(pq.vec, e.idx.lay.Spans)
		if e.opts.Measure == MeasureDTW {
			up, lo := distance.Envelope(pq.vec, e.band)
			pq.qenvHi = sketch.PAA(up, e.idx.lay.Spans)
			pq.qenvLo = sketch.PAA(lo, e.idx.lay.Spans)
		}
	}
	return pq, nil
}

// querySigmas resolves the per-timestamp error stddevs of an ad-hoc query
// for the filter measures: its own error model first, then a constant
// override, then the snapshot's reported sigmas.
func (e *Engine) querySigmas(q Query) []float64 {
	n := e.snap.SeriesLen()
	out := make([]float64, n)
	switch {
	case q.Errors != nil:
		for i := range out {
			out[i] = math.Sqrt(q.Errors[i].Variance())
		}
	case q.Sigma > 0:
		for i := range out {
			out[i] = q.Sigma
		}
	default:
		cfg := e.snap.Config()
		if cfg.Sigmas != nil {
			copy(out, cfg.Sigmas)
		} else {
			for i := range out {
				out[i] = e.snap.ReportedSigma()
			}
		}
	}
	return out
}

// checkPrepared validates that every prepared query belongs to this engine.
func (e *Engine) checkPrepared(pqs []*PreparedQuery) error {
	for _, pq := range pqs {
		if pq == nil {
			return errors.New("engine: nil prepared query")
		}
		if pq.e != e {
			return errors.New("engine: prepared query belongs to a different engine")
		}
	}
	return nil
}

// TopK returns the k nearest snapshot positions of the prepared query
// under the engine's measure, sorted by ascending distance with ties
// broken by position — bit-identical to the naive full scan.
func (pq *PreparedQuery) TopK(k int) ([]query.Neighbor, error) {
	res, err := pq.e.TopKPrepared([]*PreparedQuery{pq}, k)
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

// Range returns the snapshot positions of every series within eps of the
// prepared query, in ascending order.
func (pq *PreparedQuery) Range(eps float64) ([]int, error) {
	return pq.e.rangePrepared(context.Background(), pq, eps, nil)
}

// ProbRange returns the snapshot positions of every candidate whose match
// probability Pr(distance <= eps) reaches tau (MeasurePROUD and
// MeasureMUNICH only).
func (pq *PreparedQuery) ProbRange(eps, tau float64) ([]int, error) {
	res, err := pq.e.ProbRangePrepared([]*PreparedQuery{pq}, eps, tau)
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

// ProbTopK returns the k candidates with the highest match probability
// Pr(distance <= eps), sorted by descending probability with ties broken
// by ascending position (MeasurePROUD and MeasureMUNICH only).
func (pq *PreparedQuery) ProbTopK(eps float64, k int) ([]ProbMatch, error) {
	res, err := pq.e.ProbTopKPrepared([]*PreparedQuery{pq}, eps, k)
	if err != nil {
		return nil, err
	}
	return res[0], nil
}
