package engine

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"uncertts/internal/core"
	"uncertts/internal/munich"
	"uncertts/internal/proud"
	"uncertts/internal/qerr"
)

// Probabilistic threshold queries (MeasurePROUD, MeasureMUNICH): the
// engine-side counterparts of the naive core.PROUDMatcher and
// core.MUNICHMatcher scans. ProbRange answers PRQ(q, C, eps, tau) —
// which candidates match with probability at least tau — and ProbTopK
// ranks candidates by their match probability Pr(distance <= eps).
// Execution is sharded on core.RunSharded exactly like TopKBatch, with a
// per-query shared bound (the k-th best probability proven so far) that
// tightens pruning across shard boundaries.
//
// Pruning is measure-native and exact:
//
//   - MUNICH walks a bound hierarchy — segment-envelope lower bound (built
//     from the per-series envelopes the corpus maintains), the exact
//     bounding-interval prune, then a per-timestamp sample-pair
//     probability bound when the refine step is exact — and survivors pay
//     for a refine that itself abandons early in the estimator's own
//     arithmetic (munich.ProbabilityCutoff). Every shortcut either mirrors
//     a prune the naive matcher also applies, fixes the probability at
//     exactly 0 or 1, or is proven in the estimator's arithmetic, so
//     answers are bit-identical to the naive scan for every estimator
//     configuration.
//   - PROUD accumulates the distance moments timestamp by timestamp (in
//     exactly proud.Distance's order) and stops as soon as the sound
//     prefix bounds force the predicate outcome or push the candidate's
//     best possible probability below the shared k-th best.
//
// All decisions either mirror the naive matcher's arithmetic exactly or
// are backed by a conservative bound, so results match the naive scans
// bit for bit at every worker count.

// proudCheckStride is the number of timestamps accumulated between prefix
// bound checks: small enough that far candidates die after a fraction of
// the series, large enough that the bound arithmetic stays a rounding
// error next to the accumulation it saves.
const proudCheckStride = 16

// probBoundMargin is subtracted from probability-space pruning thresholds:
// the bounds are sound in exact arithmetic, and the margin (tiny next to
// any meaningful probability gap, enormous next to float64 rounding) keeps
// them sound under floating point so pruned answers stay bit-identical to
// the naive scan.
const probBoundMargin = 1e-9

// ProbMatch pairs a candidate index with its match probability
// Pr(distance(query, candidate) <= eps).
type ProbMatch struct {
	ID   int
	Prob float64
}

// sharedMaxBound is a monotonically increasing float64 shared across the
// workers of one query: the best proven lower bound on the k-th best match
// probability.
type sharedMaxBound struct{ bits atomic.Uint64 }

func newSharedMaxBound() *sharedMaxBound {
	b := &sharedMaxBound{}
	b.bits.Store(math.Float64bits(math.Inf(-1)))
	return b
}

func (b *sharedMaxBound) get() float64 { return math.Float64frombits(b.bits.Load()) }

// raise publishes v if it improves (increases) the bound.
func (b *sharedMaxBound) raise(v float64) {
	for {
		old := b.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if b.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// probHeap is a bounded min-heap over probabilities: it retains the k
// largest values seen and exposes the current k-th best as the pruning
// bound — the mirror image of kHeap.
type probHeap struct {
	k  int
	ps []float64
}

func newProbHeap(k int) *probHeap { return &probHeap{k: k, ps: make([]float64, 0, k)} }

func (h *probHeap) full() bool { return len(h.ps) >= h.k }

// top returns the smallest retained probability (only meaningful when full).
func (h *probHeap) top() float64 { return h.ps[0] }

func (h *probHeap) push(p float64) {
	if len(h.ps) < h.k {
		h.ps = append(h.ps, p)
		i := len(h.ps) - 1
		for i > 0 {
			parent := (i - 1) / 2
			if h.ps[parent] <= h.ps[i] {
				break
			}
			h.ps[parent], h.ps[i] = h.ps[i], h.ps[parent]
			i = parent
		}
		return
	}
	if p <= h.ps[0] {
		return
	}
	h.ps[0] = p
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.ps) && h.ps[l] < h.ps[small] {
			small = l
		}
		if r < len(h.ps) && h.ps[r] < h.ps[small] {
			small = r
		}
		if small == i {
			return
		}
		h.ps[i], h.ps[small] = h.ps[small], h.ps[i]
		i = small
	}
}

// checkProbQuery validates the common parameters of the probabilistic
// queries.
func (e *Engine) checkProbQuery(pqs []*PreparedQuery, eps float64) error {
	if e.opts.Measure != MeasurePROUD && e.opts.Measure != MeasureMUNICH {
		return fmt.Errorf("engine: %w", qerr.BadRequestf("measure %v does not define match probabilities (use MeasurePROUD or MeasureMUNICH)", e.opts.Measure))
	}
	if err := e.checkPrepared(pqs); err != nil {
		return err
	}
	if math.IsNaN(eps) || eps < 0 {
		return fmt.Errorf("engine: %w", qerr.BadRequestf("eps = %v must be non-negative", eps))
	}
	return nil
}

// checkTau validates the probability threshold against the measure's
// domain (mirroring the naive matchers: PROUD needs tau in (0, 1), MUNICH
// tau in (0, 1]) and returns PROUD's eps_limit. tau is shared by a whole
// batch, so the inverse-CDF work runs once per call, not per query.
func (e *Engine) checkTau(tau float64) (float64, error) {
	if e.opts.Measure == MeasurePROUD {
		lim, err := proud.EpsLimit(tau)
		if err != nil {
			return 0, fmt.Errorf("engine: %w", qerr.BadRequestf("%v", err))
		}
		return lim, nil
	}
	if math.IsNaN(tau) || tau <= 0 || tau > 1 {
		return 0, fmt.Errorf("engine: %w", qerr.BadRequestf("MUNICH tau %v outside (0, 1]", tau))
	}
	return 0, nil
}

// ProbRange returns the indexes of every candidate whose match probability
// Pr(distance(qi, ci) <= eps) reaches tau, excluding qi, in ascending
// order — bit-identical to the corresponding naive matcher scan
// (core.PROUDMatcher / core.MUNICHMatcher with the same estimator options).
//
// Legacy surface: ProbRange is a thin wrapper over Run with a background
// context.
func (e *Engine) ProbRange(qi int, eps, tau float64) ([]int, error) {
	res, err := e.Run(context.Background(), Request{Measure: e.opts.Measure, Kind: KindProbRange, Index: &qi, Eps: eps, Tau: tau})
	if err != nil {
		return nil, err
	}
	return res.IDs, nil
}

// ProbRangeBatch answers the probabilistic range query for every query
// index in one batched, sharded, work-stealing pass. eps and tau are
// shared by the batch; results are per-query, in input order, identical
// for every worker count.
func (e *Engine) ProbRangeBatch(queries []int, eps, tau float64) ([][]int, error) {
	pqs, err := e.prepareIndexBatch(queries)
	if err != nil {
		return nil, err
	}
	return e.ProbRangePrepared(pqs, eps, tau)
}

// ProbRangePrepared answers the probabilistic range query for every
// prepared query in one batched, sharded, work-stealing pass.
func (e *Engine) ProbRangePrepared(pqs []*PreparedQuery, eps, tau float64) ([][]int, error) {
	return e.probRangePrepared(context.Background(), pqs, eps, tau, nil)
}

// probRangePrepared is the probabilistic-range execution core: sharded
// scan under a context, polled at every (query, shard) work item, every
// PROUD prefix stride and inside the MUNICH refine estimators. emit
// (nil = none) is invoked with (query position in pqs, candidate) for
// every accepted candidate as its shard resolves it — emission order is
// nondeterministic under parallelism; the returned slices are always in
// ascending position order. A non-nil emit error aborts the scan.
func (e *Engine) probRangePrepared(ctx context.Context, pqs []*PreparedQuery, eps, tau float64, emit func(q, id int) error) ([][]int, error) {
	if err := e.checkProbQuery(pqs, eps); err != nil {
		return nil, err
	}
	epsLimit, err := e.checkTau(tau)
	if err != nil {
		return nil, err
	}
	if e.idx != nil {
		return e.probRangeIndexed(ctx, pqs, eps, tau, epsLimit, emit)
	}
	n := e.snap.Len()
	shardSize := e.opts.ShardSize
	numShards := (n + shardSize - 1) / shardSize
	done := ctx.Done()
	buckets := make([][]int, len(pqs)*numShards)

	err = core.RunShardedCtx(ctx, len(pqs)*numShards, 1, e.workersFor(pqs), func(lo, hi int) error {
		for item := lo; item < hi; item++ {
			q, shard := item/numShards, item%numShards
			pq := pqs[q]
			cLo, cHi := shard*shardSize, (shard+1)*shardSize
			if cHi > n {
				cHi = n
			}
			var ids []int
			for ci := cLo; ci < cHi; ci++ {
				if ci == pq.self {
					continue
				}
				var ok bool
				var err error
				if e.opts.Measure == MeasurePROUD {
					ok, err = e.proudAccept(pq, ci, eps, epsLimit, done)
				} else {
					ok, err = e.munichAccept(pq, ci, eps, tau, done)
				}
				if err != nil {
					return fmt.Errorf("engine: query %d candidate %d: %w", q, ci, err)
				}
				if ok {
					ids = append(ids, ci)
					if emit != nil {
						if err := emit(q, ci); err != nil {
							return err
						}
					}
				}
			}
			buckets[item] = ids
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([][]int, len(pqs))
	for q := range pqs {
		var all []int
		for shard := 0; shard < numShards; shard++ {
			all = append(all, buckets[q*numShards+shard]...)
		}
		out[q] = all
	}
	return out, nil
}

// ProbTopK returns the k candidates with the highest match probability
// Pr(distance(qi, ci) <= eps), excluding qi, sorted by descending
// probability with ties broken by ascending index — exactly what a naive
// scan computing every pair probability and sorting returns.
//
// Legacy surface: ProbTopK is a thin wrapper over Run with a background
// context.
func (e *Engine) ProbTopK(qi int, eps float64, k int) ([]ProbMatch, error) {
	res, err := e.Run(context.Background(), Request{Measure: e.opts.Measure, Kind: KindProbTopK, Index: &qi, Eps: eps, K: k})
	if err != nil {
		return nil, err
	}
	return res.Matches, nil
}

// ProbTopKBatch answers the probability-ranked top-k query for every query
// index in one batched, sharded pass. Workers cooperate through a
// per-query shared bound — the k-th best probability any shard has proven
// so far — which is a lower bound on the final k-th best, so a candidate
// whose probability upper bound falls below it can never belong to the
// answer. Results are identical for every worker count.
func (e *Engine) ProbTopKBatch(queries []int, eps float64, k int) ([][]ProbMatch, error) {
	pqs, err := e.prepareIndexBatch(queries)
	if err != nil {
		return nil, err
	}
	return e.ProbTopKPrepared(pqs, eps, k)
}

// ProbTopKPrepared answers the probability-ranked top-k query for every
// prepared query in one batched, sharded pass.
func (e *Engine) ProbTopKPrepared(pqs []*PreparedQuery, eps float64, k int) ([][]ProbMatch, error) {
	return e.probTopKPrepared(context.Background(), pqs, eps, k)
}

// probTopKPrepared is the probability-ranked top-k execution core: sharded
// scan under a context, polled at every (query, shard) work item, every
// PROUD prefix stride and inside the MUNICH refine estimators.
func (e *Engine) probTopKPrepared(ctx context.Context, pqs []*PreparedQuery, eps float64, k int) ([][]ProbMatch, error) {
	if k < 1 {
		return nil, fmt.Errorf("engine: %w", qerr.BadRequestf("k = %d must be at least 1", k))
	}
	if err := e.checkProbQuery(pqs, eps); err != nil {
		return nil, err
	}
	if e.idx != nil {
		return e.probTopKIndexed(ctx, pqs, eps, k)
	}
	n := e.snap.Len()
	shardSize := e.opts.ShardSize
	numShards := (n + shardSize - 1) / shardSize
	done := ctx.Done()

	bounds := make([]*sharedMaxBound, len(pqs))
	for i := range bounds {
		bounds[i] = pqs[i].probBoundRef()
	}
	buckets := make([][]ProbMatch, len(pqs)*numShards)

	err := core.RunShardedCtx(ctx, len(pqs)*numShards, 1, e.workersFor(pqs), func(lo, hi int) error {
		for item := lo; item < hi; item++ {
			q, shard := item/numShards, item%numShards
			pq := pqs[q]
			cLo, cHi := shard*shardSize, (shard+1)*shardSize
			if cHi > n {
				cHi = n
			}
			local := newProbHeap(k)
			var kept []ProbMatch
			for ci := cLo; ci < cHi; ci++ {
				if ci == pq.self {
					continue
				}
				cut := bounds[q].get()
				if local.full() && local.top() > cut {
					cut = local.top()
				}
				var p float64
				var ok bool
				var err error
				if e.opts.Measure == MeasurePROUD {
					p, ok, err = e.proudProb(pq, ci, eps, cut, done)
				} else {
					p, ok, err = e.munichProb(pq, ci, eps, cut, done)
				}
				if err != nil {
					return fmt.Errorf("engine: query %d candidate %d: %w", q, ci, err)
				}
				if !ok {
					continue
				}
				local.push(p)
				if local.full() {
					bounds[q].raise(local.top())
					if p < local.top() {
						// Strictly below this shard's k-th best, which lower-
						// bounds the final k-th best: provably outside the
						// answer (ties stay, for the ID tie-break).
						continue
					}
				}
				kept = append(kept, ProbMatch{ID: ci, Prob: p})
			}
			buckets[item] = kept
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	out := make([][]ProbMatch, len(pqs))
	for q := range pqs {
		var all []ProbMatch
		for shard := 0; shard < numShards; shard++ {
			all = append(all, buckets[q*numShards+shard]...)
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].Prob != all[j].Prob {
				return all[i].Prob > all[j].Prob
			}
			return all[i].ID < all[j].ID
		})
		if k < len(all) {
			all = all[:k]
		}
		out[q] = all
	}
	return out, nil
}

// proudAccept decides the PROUD range predicate for one pair: accumulate
// the distance moments in exactly proud.Distance's order, stopping as soon
// as the prefix bounds force the outcome. A completed accumulation applies
// the same EpsNorm >= epsLimit test as the naive matcher to bit-identical
// moments. done (nil = never) is polled at every prefix stride, so even a
// single long accumulation stops promptly on cancellation.
func (e *Engine) proudAccept(pq *PreparedQuery, ci int, eps, epsLimit float64, done <-chan struct{}) (bool, error) {
	e.candidates.Add(1)
	q, c := pq.vec, e.vecs.at(ci)
	n := len(q)
	varD := pq.varD
	var mean, variance float64
	for t := 0; t < n; {
		stop := t + proudCheckStride
		if stop > n {
			stop = n
		}
		for ; t < stop; t++ {
			mu := q[t] - c[t]
			mean += mu*mu + varD
			variance += 2*varD*varD + 4*varD*mu*mu
		}
		if t >= n {
			continue
		}
		if done != nil {
			select {
			case <-done:
				e.uncount()
				return false, qerr.Cancelled(nil)
			default:
			}
		}
		if e.opts.NoPrune {
			continue
		}
		gap := 2 * (pq.suffix[t] + e.suffix.at(ci)[t])
		switch proud.PrefixDecide(mean, variance, n-t, varD, gap, eps, epsLimit) {
		case proud.Accept:
			e.resolvedEarly.Add(1)
			return true, nil
		case proud.Reject:
			e.resolvedEarly.Add(1)
			return false, nil
		}
	}
	e.completed.Add(1)
	d := proud.DistanceDist{Mean: mean, Variance: variance}
	return d.EpsNorm(eps) >= epsLimit, nil
}

// proudProb computes the exact match probability for one pair, abandoning
// (ok = false) when the prefix bounds prove the probability cannot reach
// the current k-th best. done (nil = never) is polled at every prefix
// stride.
func (e *Engine) proudProb(pq *PreparedQuery, ci int, eps, cut float64, done <-chan struct{}) (float64, bool, error) {
	e.candidates.Add(1)
	q, c := pq.vec, e.vecs.at(ci)
	n := len(q)
	varD := pq.varD
	var mean, variance float64
	for t := 0; t < n; {
		stop := t + proudCheckStride
		if stop > n {
			stop = n
		}
		for ; t < stop; t++ {
			mu := q[t] - c[t]
			mean += mu*mu + varD
			variance += 2*varD*varD + 4*varD*mu*mu
		}
		if t >= n {
			continue
		}
		if done != nil {
			select {
			case <-done:
				e.uncount()
				return 0, false, qerr.Cancelled(nil)
			default:
			}
		}
		if e.opts.NoPrune || math.IsInf(cut, -1) {
			continue
		}
		gap := 2 * (pq.suffix[t] + e.suffix.at(ci)[t])
		if proud.ProbWithinUpper(mean, variance, n-t, varD, gap, eps) < cut-probBoundMargin {
			e.abandoned.Add(1)
			return 0, false, nil
		}
	}
	e.completed.Add(1)
	d := proud.DistanceDist{Mean: mean, Variance: variance}
	return d.ProbWithin(eps), true, nil
}

// munichAccept decides the MUNICH range predicate for one pair. It is
// munichProb with tau as the exclusion cutoff: an excluded candidate has a
// probability provably below tau, so it rejects; a resolved one compares
// exactly as the naive matcher does.
func (e *Engine) munichAccept(pq *PreparedQuery, ci int, eps, tau float64, done <-chan struct{}) (bool, error) {
	p, ok, err := e.munichProb(pq, ci, eps, tau, done)
	return ok && p >= tau, err
}

// munichProb computes the match probability for one pair through the bound
// hierarchy: segment envelope, exact bounding intervals (both resolve the
// probability to exactly 0 or 1), the sample-pair probability bound in the
// exact-refine regime (it bounds the exact probability, so it may only
// shortcut a refine step that would count exactly), then the refine itself
// with the estimator-native early rejection of munich.ProbabilityCutoff.
// ok = false means the candidate's probability is provably below cut
// without having been computed. The bounding-interval prune runs in every
// arm because the naive matcher itself applies it; the other devices are
// the engine's additions. done (nil = never) threads cooperative
// cancellation into the refine estimators.
func (e *Engine) munichProb(pq *PreparedQuery, ci int, eps, cut float64, done <-chan struct{}) (float64, bool, error) {
	e.candidates.Add(1)
	if !e.opts.NoPrune && munich.EnvelopeLowerBound(pq.env, e.envs[ci], e.spans) > eps {
		// No materialisation is within eps: the probability is exactly 0.
		e.pruned.Add(1)
		return 0, true, nil
	}
	x, y := pq.sample, *e.snap.Entry(ci).Samples
	dec, err := munich.Prune(x, y, eps)
	if err != nil {
		e.uncount()
		return 0, false, err
	}
	switch dec {
	case munich.PruneAccept:
		e.resolvedBounds.Add(1)
		return 1, true, nil
	case munich.PruneReject:
		e.resolvedBounds.Add(1)
		return 0, true, nil
	}
	cutoff := math.Inf(-1)
	if !e.opts.NoPrune {
		if !math.IsInf(cut, -1) && e.opts.MUNICH.ExactFeasible(x, y) {
			up, err := munich.ProbUpperBound(x, y, eps)
			if err != nil {
				e.uncount()
				return 0, false, err
			}
			if up < cut-probBoundMargin {
				e.resolvedBounds.Add(1)
				return 0, false, nil
			}
		}
		cutoff = cut
	}
	p, complete, err := munich.ProbabilityCutoffCancel(x, y, eps, cutoff, e.opts.MUNICH, done)
	if err != nil {
		e.uncount()
		return 0, false, err
	}
	if !complete { // estimate provably below cut in the estimator's arithmetic
		e.abandoned.Add(1)
		return 0, false, nil
	}
	e.completed.Add(1)
	return p, true, nil
}
