package engine

import (
	"strings"

	"uncertts/internal/telemetry"
)

// The engine's metric families: the pruning-cascade and index
// effectiveness fractions, fed from the cumulative Stats counters after
// every query so /metrics tracks what /stats already proves.
var (
	prunedRatio = telemetry.NewGaugeVec(
		"uncertts_engine_pruned_ratio",
		"Fraction of considered candidates the pruning cascade resolved without a full refine, by measure (cumulative).",
		"measure")
	indexSkippedRatio = telemetry.NewGaugeVec(
		"uncertts_engine_index_skipped_ratio",
		"Fraction of series the sketch index skipped before they became kernel candidates, by measure (cumulative).",
		"measure")
)

// recordStatsMetrics publishes the measure's cumulative pruning picture.
// Ratios (not raw counters) because the counters are already served
// losslessly by /stats; the gauges answer the operator question — is the
// cascade still earning its keep — at a glance.
func recordStatsMetrics(m Measure, st Stats) {
	// Lowercased to match the wire request spelling, like every other
	// measure-labelled family.
	label := strings.ToLower(m.String())
	if st.Candidates > 0 {
		prunedRatio.With(label).Set(float64(st.Pruned()) / float64(st.Candidates))
	}
	if seen := st.Candidates + st.SeriesSkippedByIndex; seen > 0 {
		indexSkippedRatio.With(label).Set(float64(st.SeriesSkippedByIndex) / float64(seen))
	}
}
