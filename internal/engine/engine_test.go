package engine

import (
	"math"
	"reflect"
	"sync"
	"testing"

	"uncertts/internal/core"
	"uncertts/internal/query"
	"uncertts/internal/ucr"
	"uncertts/internal/uncertain"
)

func testWorkload(t testing.TB, series, length int) *core.Workload {
	t.Helper()
	ds, err := ucr.Generate("CBF", ucr.Options{MaxSeries: series, Length: length, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	pert, err := uncertain.NewConstantPerturber(uncertain.Normal, 0.5, length, 7)
	if err != nil {
		t.Fatal(err)
	}
	w, err := core.NewWorkload(ds, pert, core.WorkloadConfig{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// naiveTopK is the reference full scan: query.TopK over the engine's own
// exact Distance.
func naiveTopK(t *testing.T, e *Engine, qi, k int) []query.Neighbor {
	t.Helper()
	nn, err := query.TopK(e.snap.Len(), qi, func(ci int) (float64, error) {
		return e.Distance(qi, ci)
	}, k)
	if err != nil {
		t.Fatal(err)
	}
	return nn
}

func allMeasures() []Options {
	return []Options{
		{Measure: MeasureEuclidean},
		{Measure: MeasureUMA},
		{Measure: MeasureUEMA, Lambda: 0.8},
		{Measure: MeasureDTW, Band: 5},
		{Measure: MeasureDUST},
	}
}

func TestTopKMatchesNaiveScanEveryMeasure(t *testing.T) {
	w := testWorkload(t, 40, 64)
	for _, opts := range allMeasures() {
		opts.ShardSize = 7 // force many shards
		e, err := New(w, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{1, 3, 10, 100} {
			for _, qi := range []int{0, 13, 39} {
				want := naiveTopK(t, e, qi, k)
				got, err := e.TopK(qi, k)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s: TopK(q=%d, k=%d) = %v, want %v", opts.Measure, qi, k, got, want)
				}
			}
		}
	}
}

func TestTopKBatchDeterministicUnderWorkerCounts(t *testing.T) {
	w := testWorkload(t, 40, 64)
	queries := []int{0, 5, 11, 23, 39}
	for _, opts := range allMeasures() {
		opts.ShardSize = 8
		var want [][]query.Neighbor
		for _, workers := range []int{1, 2, 3, 8, 32} {
			opts.Workers = workers
			e, err := New(w, opts)
			if err != nil {
				t.Fatal(err)
			}
			got, err := e.TopKBatch(queries, 5)
			if err != nil {
				t.Fatal(err)
			}
			if want == nil {
				want = got
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s: workers=%d changed the batch answer", opts.Measure, workers)
			}
		}
	}
}

func TestRangeMatchesNaiveScan(t *testing.T) {
	w := testWorkload(t, 40, 64)
	for _, opts := range allMeasures() {
		opts.ShardSize = 6
		e, err := New(w, opts)
		if err != nil {
			t.Fatal(err)
		}
		qi := 4
		// Pick an eps that catches a non-trivial subset: the exact distance
		// to the 8th nearest neighbour.
		nn := naiveTopK(t, e, qi, 8)
		eps := nn[len(nn)-1].Distance
		want, err := query.RangeQueryFunc(w.Len(), qi, func(ci int) (float64, error) {
			return e.Distance(qi, ci)
		}, eps)
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.Range(qi, eps)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: Range(%d, %g) = %v, want %v", opts.Measure, qi, eps, got, want)
		}
	}
}

func TestPruningDoesMeasurablyLessWork(t *testing.T) {
	w := testWorkload(t, 60, 96)
	queries := make([]int, w.Len())
	for i := range queries {
		queries[i] = i
	}
	for _, opts := range []Options{
		{Measure: MeasureEuclidean},
		{Measure: MeasureDTW, Band: 5},
		{Measure: MeasureDUST},
	} {
		pruned, err := New(w, opts)
		if err != nil {
			t.Fatal(err)
		}
		naiveOpts := opts
		naiveOpts.NoPrune = true
		naive, err := New(w, naiveOpts)
		if err != nil {
			t.Fatal(err)
		}
		wantRes, err := naive.TopKBatch(queries, 5)
		if err != nil {
			t.Fatal(err)
		}
		gotRes, err := pruned.TopKBatch(queries, 5)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotRes, wantRes) {
			t.Errorf("%s: pruned batch differs from naive scan", opts.Measure)
		}
		ps, ns := pruned.Stats(), naive.Stats()
		if ps.Candidates != ns.Candidates {
			t.Errorf("%s: candidate counts differ: %d vs %d", opts.Measure, ps.Candidates, ns.Candidates)
		}
		if ns.Completed != ns.Candidates {
			t.Errorf("%s: naive arm must complete every candidate (%+v)", opts.Measure, ns)
		}
		if got := ps.Completed + ps.AbandonedEarly + ps.PrunedByEnvelope; got != ps.Candidates {
			t.Errorf("%s: stats identity broken: %+v", opts.Measure, ps)
		}
		// The acceptance bar: measurably fewer full distance computations.
		if ps.Completed >= ns.Completed/2 {
			t.Errorf("%s: pruning completed %d of %d full computations, want < half",
				opts.Measure, ps.Completed, ns.Completed)
		}
	}
}

func TestTopKBatchConcurrentUseIsSafe(t *testing.T) {
	// Multiple goroutines share one engine (and, for DUST, one set of phi
	// tables); run with -race in CI.
	w := testWorkload(t, 30, 48)
	for _, opts := range []Options{{Measure: MeasureEuclidean, Workers: 4, ShardSize: 5}, {Measure: MeasureDUST, Workers: 2, ShardSize: 8}} {
		e, err := New(w, opts)
		if err != nil {
			t.Fatal(err)
		}
		want, err := e.TopKBatch([]int{0, 1, 2}, 4)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				got, err := e.TopKBatch([]int{0, 1, 2}, 4)
				if err != nil {
					t.Error(err)
					return
				}
				if !reflect.DeepEqual(got, want) {
					t.Error("concurrent batch answer differs")
				}
			}()
		}
		wg.Wait()
	}
}

func TestEngineValidation(t *testing.T) {
	w := testWorkload(t, 20, 32)
	if _, err := New(nil, Options{}); err == nil {
		t.Error("nil workload should error")
	}
	if _, err := New(w, Options{Measure: Measure(99)}); err == nil {
		t.Error("unknown measure should error")
	}
	e, err := New(w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.TopK(99, 3); err == nil {
		t.Error("out-of-range query should error")
	}
	if _, err := e.TopK(0, 0); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := e.Range(0, -1); err == nil {
		t.Error("negative eps should error")
	}
	if _, err := e.Range(0, math.NaN()); err == nil {
		t.Error("NaN eps should error")
	}
	if _, err := e.Distance(0, 99); err == nil {
		t.Error("out-of-range candidate should error")
	}
}

func TestMeasureString(t *testing.T) {
	for m, want := range map[Measure]string{
		MeasureEuclidean: "Euclidean",
		MeasureUMA:       "UMA",
		MeasureUEMA:      "UEMA",
		MeasureDTW:       "DTW",
		MeasureDUST:      "DUST",
		Measure(42):      "Measure(42)",
	} {
		if got := m.String(); got != want {
			t.Errorf("Measure(%d).String() = %q, want %q", int(m), got, want)
		}
	}
}

func TestResetStats(t *testing.T) {
	w := testWorkload(t, 20, 32)
	e, err := New(w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.TopK(0, 3); err != nil {
		t.Fatal(err)
	}
	if e.Stats().Candidates == 0 {
		t.Fatal("expected work to be counted")
	}
	e.ResetStats()
	if s := e.Stats(); s != (Stats{}) {
		t.Fatalf("ResetStats left %+v", s)
	}
}
