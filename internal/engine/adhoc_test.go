package engine

import (
	"fmt"
	"math"
	"reflect"
	"sync"
	"testing"

	"uncertts/internal/corpus"
	"uncertts/internal/munich"
	"uncertts/internal/stats"
)

// testCorpus builds a corpus of deterministic series, each with a sample
// model so every measure can run.
func testCorpus(t testing.TB, series, length int) *corpus.Corpus {
	t.Helper()
	c := corpus.New(corpus.Config{ReportedSigma: 0.3, Segments: 4})
	batch := make([]corpus.Series, series)
	for s := range batch {
		batch[s] = corpusSeries(length, int64(s))
	}
	if _, err := c.InsertBatch(batch); err != nil {
		t.Fatal(err)
	}
	return c
}

// corpusSeries derives one deterministic series (values + samples) from a
// seed.
func corpusSeries(length int, seed int64) corpus.Series {
	rng := stats.NewRand(seed + 1000)
	s := corpus.Series{Values: make([]float64, length), Samples: make([][]float64, length)}
	for i := range s.Values {
		s.Values[i] = math.Sin(float64(seed)*0.7+float64(i)*0.31) + 0.2*rng.NormFloat64()
		row := make([]float64, 3)
		for j := range row {
			row[j] = s.Values[i] + 0.15*rng.NormFloat64()
		}
		s.Samples[i] = row
	}
	return s
}

// allMeasureOptions enumerates one engine configuration per measure, with
// the cheap estimator settings the MUNICH tests use.
func allMeasureOptions() []Options {
	return []Options{
		{Measure: MeasureEuclidean, ShardSize: 5},
		{Measure: MeasureUMA, ShardSize: 5},
		{Measure: MeasureUEMA, ShardSize: 5},
		{Measure: MeasureDTW, Band: 3, ShardSize: 5},
		{Measure: MeasureDUST, ShardSize: 5},
		{Measure: MeasurePROUD, ShardSize: 5},
		{Measure: MeasureMUNICH, ShardSize: 5, MUNICH: munich.Options{Bins: 256}},
	}
}

// adhocQueryFor derives an ad-hoc query (not resident in the corpus) of
// the given length.
func adhocQueryFor(length int) Query {
	s := corpusSeries(length, 999)
	return Query{Values: s.Values, Samples: s.Samples}
}

// runPrepared executes the measure-appropriate query through a prepared
// query and returns a comparable result value.
func runPrepared(t testing.TB, e *Engine, pq *PreparedQuery, eps float64) interface{} {
	t.Helper()
	if e.Measure().Probabilistic() {
		rng, err := pq.ProbRange(eps, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		top, err := pq.ProbTopK(eps, 4)
		if err != nil {
			t.Fatal(err)
		}
		return []interface{}{rng, top}
	}
	nn, err := pq.TopK(5)
	if err != nil {
		t.Fatal(err)
	}
	rng, err := pq.Range(eps)
	if err != nil {
		t.Fatal(err)
	}
	return []interface{}{nn, rng}
}

// TestAdHocQueriesMatchUnprunedScanEveryMeasure poses the same ad-hoc
// query (a series not resident in the corpus) to the pruned engine and to
// the NoPrune reference arm, across worker counts: answers must be
// bit-identical for all seven measures.
func TestAdHocQueriesMatchUnprunedScanEveryMeasure(t *testing.T) {
	c := testCorpus(t, 24, 32)
	snap := c.Snapshot()
	q := adhocQueryFor(32)
	const eps = 2.5
	for _, opts := range allMeasureOptions() {
		naiveOpts := opts
		naiveOpts.NoPrune = true
		naive, err := NewFromSnapshot(snap, naiveOpts)
		if err != nil {
			t.Fatal(err)
		}
		npq, err := naive.Prepare(q)
		if err != nil {
			t.Fatal(err)
		}
		want := runPrepared(t, naive, npq, eps)
		for _, workers := range []int{1, 2, 8} {
			wopts := opts
			wopts.Workers = workers
			e, err := NewFromSnapshot(snap, wopts)
			if err != nil {
				t.Fatal(err)
			}
			pq, err := e.Prepare(q)
			if err != nil {
				t.Fatal(err)
			}
			got := runPrepared(t, e, pq, eps)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s workers=%d: ad-hoc answer differs from the unpruned scan", opts.Measure, workers)
			}
		}
	}
}

// TestAdHocQueryOfResidentSeriesSeesItself: an ad-hoc query that happens
// to equal a resident series must find that series at distance 0 (ad-hoc
// queries exclude nothing), while the index query for the same position
// excludes it.
func TestAdHocQueryOfResidentSeriesSeesItself(t *testing.T) {
	c := testCorpus(t, 12, 24)
	snap := c.Snapshot()
	e, err := NewFromSnapshot(snap, Options{Measure: MeasureEuclidean})
	if err != nil {
		t.Fatal(err)
	}
	ent := snap.Entry(3)
	pq, err := e.Prepare(Query{Values: ent.PDF.Observations})
	if err != nil {
		t.Fatal(err)
	}
	nn, err := pq.TopK(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(nn) == 0 || nn[0].ID != 3 || nn[0].Distance != 0 {
		t.Fatalf("ad-hoc self query: nn[0] = %+v, want position 3 at distance 0", nn[0])
	}
	ipq, err := e.PrepareIndex(3)
	if err != nil {
		t.Fatal(err)
	}
	inn, err := ipq.TopK(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range inn {
		if n.ID == 3 {
			t.Error("index query did not exclude itself")
		}
	}
}

// TestAdHocValidation exercises the ad-hoc preparation error paths.
func TestAdHocValidation(t *testing.T) {
	c := testCorpus(t, 8, 16)
	snap := c.Snapshot()
	e, err := NewFromSnapshot(snap, Options{Measure: MeasureEuclidean})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Prepare(Query{Values: make([]float64, 9)}); err == nil {
		t.Error("wrong-length query should error")
	}
	if _, err := e.Prepare(Query{Values: make([]float64, 16), Sigma: -1}); err == nil {
		t.Error("negative sigma should error")
	}
	if _, err := e.Prepare(Query{Values: make([]float64, 16), Errors: make([]stats.Dist, 3)}); err == nil {
		t.Error("wrong-length error model should error")
	}
	me, err := NewFromSnapshot(snap, Options{Measure: MeasureMUNICH, MUNICH: munich.Options{Bins: 128}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := me.Prepare(Query{Values: make([]float64, 16)}); err == nil {
		t.Error("MUNICH ad-hoc query without samples should error")
	}
	// Prepared queries are engine-bound.
	pq, err := e.Prepare(Query{Values: make([]float64, 16)})
	if err != nil {
		t.Fatal(err)
	}
	other, err := NewFromSnapshot(snap, Options{Measure: MeasureEuclidean})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.TopKPrepared([]*PreparedQuery{pq}, 3); err == nil {
		t.Error("prepared query from another engine should be rejected")
	}
}

// TestSnapshotIsolationUnderConcurrentMutation is the acceptance test of
// the corpus refactor: queries running concurrently with Insert/Delete
// return results bit-identical to the unpruned scan of the snapshot they
// started on, for every measure and worker counts {1, 2, 8}.
func TestSnapshotIsolationUnderConcurrentMutation(t *testing.T) {
	c := testCorpus(t, 20, 24)
	snap := c.Snapshot()
	q := adhocQueryFor(24)
	const eps = 2.0

	// Reference answers, computed on the frozen snapshot before any
	// mutation.
	type ref struct {
		opts Options
		want interface{}
	}
	var refs []ref
	for _, opts := range allMeasureOptions() {
		naiveOpts := opts
		naiveOpts.NoPrune = true
		naive, err := NewFromSnapshot(snap, naiveOpts)
		if err != nil {
			t.Fatal(err)
		}
		pq, err := naive.Prepare(q)
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, ref{opts: opts, want: runPrepared(t, naive, pq, eps)})
	}

	// Writers mutate the corpus while readers query the old snapshot.
	var writers sync.WaitGroup
	stopWriting := make(chan struct{})
	writers.Add(1)
	go func() {
		defer writers.Done()
		for i := 0; ; i++ {
			select {
			case <-stopWriting:
				return
			default:
			}
			id, err := c.Insert(corpusSeries(24, int64(2000+i)))
			if err != nil {
				t.Error(err)
				return
			}
			if i%3 == 0 {
				if err := c.Delete(id); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()

	var readers sync.WaitGroup
	for _, r := range refs {
		for _, workers := range []int{1, 2, 8} {
			readers.Add(1)
			go func(r ref, workers int) {
				defer readers.Done()
				opts := r.opts
				opts.Workers = workers
				e, err := NewFromSnapshot(snap, opts)
				if err != nil {
					t.Error(err)
					return
				}
				pq, err := e.Prepare(q)
				if err != nil {
					t.Error(err)
					return
				}
				for rep := 0; rep < 3; rep++ {
					got := runPrepared(t, e, pq, eps)
					if !reflect.DeepEqual(got, r.want) {
						t.Errorf("%s workers=%d: snapshot query changed under concurrent mutation", r.opts.Measure, workers)
						return
					}
				}
			}(r, workers)
		}
	}
	readers.Wait()
	close(stopWriting)
	writers.Wait()

	if c.Snapshot().Epoch() == snap.Epoch() {
		t.Fatal("writer never published a mutation; the test proved nothing")
	}
}

// TestStatsInvariantEveryMeasure asserts the accounting identity
// Candidates = Completed + AbandonedEarly + PrunedByEnvelope +
// ResolvedByBounds + ResolvedEarly across all seven measures and both
// query families.
func TestStatsInvariantEveryMeasure(t *testing.T) {
	c := testCorpus(t, 20, 24)
	snap := c.Snapshot()
	queries := []int{0, 5, 11, 19}
	for _, opts := range allMeasureOptions() {
		e, err := NewFromSnapshot(snap, opts)
		if err != nil {
			t.Fatal(err)
		}
		if e.Measure().Probabilistic() {
			if _, err := e.ProbRangeBatch(queries, 2.0, 0.1); err != nil {
				t.Fatal(err)
			}
			if _, err := e.ProbTopKBatch(queries, 2.0, 4); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := e.TopKBatch(queries, 5); err != nil {
				t.Fatal(err)
			}
			if _, err := e.Range(0, 2.0); err != nil {
				t.Fatal(err)
			}
		}
		s := e.Stats()
		if s.Candidates == 0 {
			t.Errorf("%s: no candidates examined", opts.Measure)
		}
		if sum := s.Completed + s.AbandonedEarly + s.PrunedByEnvelope + s.ResolvedByBounds + s.ResolvedEarly; sum != s.Candidates {
			t.Errorf("%s: stats identity broken: sum %d != candidates %d (%+v)", opts.Measure, sum, s.Candidates, s)
		}
	}
}

func TestStatsMergeAndString(t *testing.T) {
	a := Stats{Candidates: 10, Completed: 4, AbandonedEarly: 3, PrunedByEnvelope: 1, ResolvedByBounds: 1, ResolvedEarly: 1}
	b := Stats{Candidates: 5, Completed: 5}
	m := a.Merge(b)
	want := Stats{Candidates: 15, Completed: 9, AbandonedEarly: 3, PrunedByEnvelope: 1, ResolvedByBounds: 1, ResolvedEarly: 1}
	if m != want {
		t.Fatalf("Merge = %+v, want %+v", m, want)
	}
	if m.Pruned() != 6 {
		t.Errorf("Pruned() = %d, want 6", m.Pruned())
	}
	got := m.String()
	wantStr := fmt.Sprintf("%d candidates, %d completed, %d abandoned early, %d envelope-pruned, %d resolved by bounds, %d resolved on a prefix (40.0%% of the scan skipped)",
		m.Candidates, m.Completed, m.AbandonedEarly, m.PrunedByEnvelope, m.ResolvedByBounds, m.ResolvedEarly)
	if got != wantStr {
		t.Errorf("String() = %q, want %q", got, wantStr)
	}
	if (Stats{}).String() == "" {
		t.Error("zero stats should still render")
	}
}

// TestEngineReusesCorpusArtifacts verifies the incremental-maintenance
// contract: an engine whose options match the corpus geometry aliases the
// snapshot's precomputed artifacts instead of recomputing them.
func TestEngineReusesCorpusArtifacts(t *testing.T) {
	c := testCorpus(t, 6, 40)
	snap := c.Snapshot()
	cfg := snap.Config()

	dtw, err := NewFromSnapshot(snap, Options{Measure: MeasureDTW, Band: cfg.Band})
	if err != nil {
		t.Fatal(err)
	}
	if &dtw.upper.at(0)[0] != &snap.Entry(0).Upper[0] {
		t.Error("DTW engine did not alias the corpus envelopes")
	}
	uma, err := NewFromSnapshot(snap, Options{Measure: MeasureUMA})
	if err != nil {
		t.Fatal(err)
	}
	if &uma.vecs.at(0)[0] != &snap.Entry(0).UMA[0] {
		t.Error("UMA engine did not alias the corpus filtered vectors")
	}
	du, err := NewFromSnapshot(snap, Options{Measure: MeasureDUST})
	if err != nil {
		t.Fatal(err)
	}
	if du.dust != snap.Dust() {
		t.Error("DUST engine did not share the corpus evaluator")
	}
	mu, err := NewFromSnapshot(snap, Options{Measure: MeasureMUNICH, Segments: cfg.Segments})
	if err != nil {
		t.Fatal(err)
	}
	if &mu.envs[0].Lo[0] != &snap.Entry(0).Env.Lo[0] {
		t.Error("MUNICH engine did not alias the corpus envelopes")
	}
	// Mismatched geometry falls back to local computation and still
	// answers correctly.
	dtw2, err := NewFromSnapshot(snap, Options{Measure: MeasureDTW, Band: cfg.Band + 2})
	if err != nil {
		t.Fatal(err)
	}
	if &dtw2.upper.at(0)[0] == &snap.Entry(0).Upper[0] {
		t.Error("band-mismatched DTW engine aliased the wrong envelopes")
	}
	if _, err := dtw2.TopK(0, 3); err != nil {
		t.Fatal(err)
	}
}
