package engine

import (
	"context"
	"errors"
	"reflect"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"uncertts/internal/munich"
	"uncertts/internal/qerr"
)

// runConfigs pairs every measure with the engine options its Run tests
// use; the prob workload (which carries samples) serves all seven.
func runConfigs() []Options {
	return []Options{
		{Measure: MeasureEuclidean},
		{Measure: MeasureUMA},
		{Measure: MeasureUEMA, Lambda: 0.8},
		{Measure: MeasureDTW, Band: 5},
		{Measure: MeasureDUST},
		{Measure: MeasurePROUD},
		{Measure: MeasureMUNICH, MUNICH: munich.Options{Bins: 512}},
	}
}

// TestRunMatchesDirectPathEveryMeasureAndWorkers is the API-redesign
// acceptance test: Engine.Run answers are bit-identical to the direct
// batch execution paths for every measure at workers {1, 2, 8}.
func TestRunMatchesDirectPathEveryMeasureAndWorkers(t *testing.T) {
	w := probWorkload(t, 24, 32)
	const qi, k = 3, 4
	for _, opts := range runConfigs() {
		for _, workers := range []int{1, 2, 8} {
			e, err := New(w, opts)
			if err != nil {
				t.Fatalf("%v: %v", opts.Measure, err)
			}
			name := opts.Measure.String()
			req := Request{Measure: opts.Measure, Workers: workers}
			idx := qi
			req.Index = &idx

			if !opts.Measure.Probabilistic() {
				req.Kind, req.K = KindTopK, k
				res, err := e.Run(context.Background(), req)
				if err != nil {
					t.Fatalf("%s w=%d Run(topk): %v", name, workers, err)
				}
				direct, err := e.TopKBatch([]int{qi}, k)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(res.Neighbors, direct[0]) {
					t.Errorf("%s w=%d: Run topk %v != direct %v", name, workers, res.Neighbors, direct[0])
				}

				eps := direct[0][len(direct[0])-1].Distance
				req.Kind, req.Eps = KindRange, eps
				res, err = e.Run(context.Background(), req)
				if err != nil {
					t.Fatalf("%s w=%d Run(range): %v", name, workers, err)
				}
				pq, err := e.PrepareIndex(qi)
				if err != nil {
					t.Fatal(err)
				}
				directIDs, err := pq.Range(eps)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(res.IDs, directIDs) {
					t.Errorf("%s w=%d: Run range %v != direct %v", name, workers, res.IDs, directIDs)
				}
				continue
			}

			eps, tau := w.EpsEucl(qi), 0.3
			req.Kind, req.Eps, req.Tau = KindProbRange, eps, tau
			res, err := e.Run(context.Background(), req)
			if err != nil {
				t.Fatalf("%s w=%d Run(probrange): %v", name, workers, err)
			}
			directIDs, err := e.ProbRangeBatch([]int{qi}, eps, tau)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(res.IDs, directIDs[0]) {
				t.Errorf("%s w=%d: Run probrange %v != direct %v", name, workers, res.IDs, directIDs[0])
			}

			req.Kind, req.K = KindProbTopK, k
			res, err = e.Run(context.Background(), req)
			if err != nil {
				t.Fatalf("%s w=%d Run(probtopk): %v", name, workers, err)
			}
			directMs, err := e.ProbTopKBatch([]int{qi}, eps, k)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(res.Matches, directMs[0]) {
				t.Errorf("%s w=%d: Run probtopk %v != direct %v", name, workers, res.Matches, directMs[0])
			}
		}
	}
}

func TestRunValidationSentinels(t *testing.T) {
	w := probWorkload(t, 12, 16)
	e, err := New(w, Options{Measure: MeasureEuclidean})
	if err != nil {
		t.Fatal(err)
	}
	qi := 0
	cases := []struct {
		name string
		req  Request
		want error
	}{
		{"measure mismatch", Request{Measure: MeasureDTW, Kind: KindTopK, Index: &qi, K: 3}, qerr.ErrBadRequest},
		{"unknown kind", Request{Kind: Kind(99), Index: &qi}, qerr.ErrBadRequest},
		{"prob kind on distance measure", Request{Kind: KindProbRange, Index: &qi, Eps: 1, Tau: 0.5}, qerr.ErrBadRequest},
		{"no target", Request{Kind: KindTopK, K: 3}, qerr.ErrBadRequest},
		{"two targets", Request{Kind: KindTopK, K: 3, Index: &qi, AdHoc: &Query{}}, qerr.ErrBadRequest},
		{"k = 0", Request{Kind: KindTopK, Index: &qi}, qerr.ErrBadRequest},
		{"negative eps", Request{Kind: KindRange, Index: &qi, Eps: -1}, qerr.ErrBadRequest},
		{"negative workers", Request{Kind: KindTopK, Index: &qi, K: 3, Workers: -1}, qerr.ErrBadRequest},
		{"negative offset", Request{Kind: KindTopK, Index: &qi, K: 3, Offset: -1}, qerr.ErrBadRequest},
		{"negative limit", Request{Kind: KindTopK, Index: &qi, K: 3, Limit: -1}, qerr.ErrBadRequest},
		{"ad-hoc length mismatch", Request{Kind: KindTopK, K: 3, AdHoc: &Query{Values: make([]float64, 5)}}, qerr.ErrLengthMismatch},
	}
	for _, tc := range cases {
		if _, err := e.Run(context.Background(), tc.req); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}

	// Tau domain errors are measure-specific and typed.
	pe, err := New(w, Options{Measure: MeasurePROUD})
	if err != nil {
		t.Fatal(err)
	}
	for _, tau := range []float64{-0.1, 0, 1, 1.5} {
		req := Request{Measure: MeasurePROUD, Kind: KindProbRange, Index: &qi, Eps: 1, Tau: tau}
		if _, err := pe.Run(context.Background(), req); !errors.Is(err, qerr.ErrBadRequest) {
			t.Errorf("PROUD tau=%v: err = %v, want ErrBadRequest", tau, err)
		}
	}

	// Parsers classify failures too.
	if _, err := ParseMeasure("cosine"); !errors.Is(err, qerr.ErrUnknownMeasure) {
		t.Errorf("ParseMeasure: err = %v, want ErrUnknownMeasure", err)
	}
	if _, err := ParseKind("knn"); !errors.Is(err, qerr.ErrBadRequest) {
		t.Errorf("ParseKind: err = %v, want ErrBadRequest", err)
	}
}

func TestRunPaginationWindow(t *testing.T) {
	w := probWorkload(t, 20, 16)
	e, err := New(w, Options{Measure: MeasureEuclidean})
	if err != nil {
		t.Fatal(err)
	}
	qi := 2
	full, err := e.Run(context.Background(), Request{Kind: KindTopK, Index: &qi, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if full.Total != len(full.Neighbors) {
		t.Fatalf("Total = %d, want %d", full.Total, len(full.Neighbors))
	}
	page, err := e.Run(context.Background(), Request{Kind: KindTopK, Index: &qi, K: 10, Offset: 3, Limit: 4})
	if err != nil {
		t.Fatal(err)
	}
	if page.Total != full.Total {
		t.Errorf("windowed Total = %d, want %d", page.Total, full.Total)
	}
	if want := full.Neighbors[3:7]; !reflect.DeepEqual(page.Neighbors, want) {
		t.Errorf("page = %v, want %v", page.Neighbors, want)
	}
	// Offset past the end yields an empty page, not an error.
	empty, err := e.Run(context.Background(), Request{Kind: KindTopK, Index: &qi, K: 10, Offset: 99})
	if err != nil {
		t.Fatal(err)
	}
	if len(empty.Neighbors) != 0 || empty.Total != full.Total {
		t.Errorf("past-the-end page = %v (total %d), want empty with total %d", empty.Neighbors, empty.Total, full.Total)
	}
}

// TestRunStreamMatchesRun asserts streamed items agree with the final
// result for every kind: ordered equality for the top-k kinds (emitted at
// the merge), set equality for the range kinds (emitted mid-scan, in
// shard-completion order).
func TestRunStreamMatchesRun(t *testing.T) {
	w := probWorkload(t, 24, 32)
	qi := 1

	e, err := New(w, Options{Measure: MeasureUEMA, Workers: 4, ShardSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	var items []Item
	collect := func(it Item) error { items = append(items, it); return nil }

	res, err := e.RunStream(context.Background(), Request{Measure: MeasureUEMA, Kind: KindTopK, Index: &qi, K: 5}, collect)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != len(res.Neighbors) {
		t.Fatalf("topk streamed %d items, result has %d", len(items), len(res.Neighbors))
	}
	for i, n := range res.Neighbors {
		if items[i].ID != n.ID || items[i].Distance != n.Distance {
			t.Errorf("topk item %d = %+v, want %+v", i, items[i], n)
		}
	}

	eps := res.Neighbors[len(res.Neighbors)-1].Distance
	items = nil
	res, err = e.RunStream(context.Background(), Request{Measure: MeasureUEMA, Kind: KindRange, Index: &qi, Eps: eps}, collect)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]int, len(items))
	for i, it := range items {
		got[i] = it.ID
	}
	sort.Ints(got)
	if !reflect.DeepEqual(got, res.IDs) {
		t.Errorf("range streamed %v, result %v", got, res.IDs)
	}

	// Probabilistic kinds stream too.
	pe, err := New(w, Options{Measure: MeasurePROUD, Workers: 4, ShardSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	items = nil
	res, err = pe.RunStream(context.Background(), Request{Measure: MeasurePROUD, Kind: KindProbRange, Index: &qi, Eps: w.EpsEucl(qi), Tau: 0.3}, collect)
	if err != nil {
		t.Fatal(err)
	}
	got = got[:0]
	for _, it := range items {
		got = append(got, it.ID)
	}
	sort.Ints(got)
	if !reflect.DeepEqual(got, res.IDs) {
		t.Errorf("probrange streamed %v, result %v", got, res.IDs)
	}

	// An emit error aborts the query and surfaces verbatim.
	sentinel := errors.New("client gone")
	_, err = e.RunStream(context.Background(), Request{Measure: MeasureUEMA, Kind: KindRange, Index: &qi, Eps: eps}, func(Item) error {
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("emit error: got %v, want %v", err, sentinel)
	}
}

// TestRunPreCancelledContext asserts a context cancelled before Run starts
// stops the query before any candidate is examined, for all seven measures
// at workers {1, 2, 8}, with the error carrying both sentinels.
func TestRunPreCancelledContext(t *testing.T) {
	w := probWorkload(t, 24, 32)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	qi := 0
	for _, opts := range runConfigs() {
		for _, workers := range []int{1, 2, 8} {
			e, err := New(w, opts)
			if err != nil {
				t.Fatal(err)
			}
			req := Request{Measure: opts.Measure, Index: &qi, Workers: workers}
			if opts.Measure.Probabilistic() {
				req.Kind, req.Eps, req.Tau = KindProbRange, 1, 0.5
			} else {
				req.Kind, req.K = KindTopK, 3
			}
			_, err = e.Run(ctx, req)
			if !errors.Is(err, qerr.ErrCancelled) || !errors.Is(err, context.Canceled) {
				t.Errorf("%v w=%d: err = %v, want ErrCancelled wrapping context.Canceled", opts.Measure, workers, err)
			}
			if got := e.Stats().Candidates; got != 0 {
				t.Errorf("%v w=%d: %d candidates examined under a pre-cancelled context", opts.Measure, workers, got)
			}
		}
	}
}

// TestRunCancelMidQueryEveryMeasure cancels a running query for all seven
// measures at workers {1, 2, 8}: a watcher cancels the context as soon as
// the scan has examined its first candidates, and Run must return promptly
// either the cancellation error or — when the scan beat the cancel — a
// result identical to an uncancelled run.
func TestRunCancelMidQueryEveryMeasure(t *testing.T) {
	w := probWorkload(t, 48, 64)
	qi := 0
	for _, opts := range runConfigs() {
		for _, workers := range []int{1, 2, 8} {
			e, err := New(w, opts)
			if err != nil {
				t.Fatal(err)
			}
			req := Request{Measure: opts.Measure, Index: &qi, Workers: workers}
			if opts.Measure.Probabilistic() {
				req.Kind, req.Eps, req.Tau = KindProbRange, w.EpsEucl(qi), 0.3
			} else {
				req.Kind, req.K = KindTopK, 3
			}
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				for e.Stats().Candidates == 0 {
					time.Sleep(10 * time.Microsecond)
				}
				cancel()
			}()
			start := time.Now()
			res, err := e.Run(ctx, req)
			elapsed := time.Since(start)
			cancel()
			if elapsed > 10*time.Second {
				t.Fatalf("%v w=%d: Run held the executor %v after cancellation", opts.Measure, workers, elapsed)
			}
			if err != nil {
				if !errors.Is(err, qerr.ErrCancelled) || !errors.Is(err, context.Canceled) {
					t.Errorf("%v w=%d: err = %v, want a cancellation", opts.Measure, workers, err)
				}
				continue
			}
			// The scan finished before the cancel landed: the result must
			// be the real answer.
			ref, rerr := e.Run(context.Background(), req)
			if rerr != nil {
				t.Fatal(rerr)
			}
			if !reflect.DeepEqual(res, ref) {
				t.Errorf("%v w=%d: completed-under-cancel result differs from reference", opts.Measure, workers)
			}
		}
	}
}

// TestRunCancellationInterruptsLongKernels pins the mid-kernel polling: a
// DTW scan over series long enough that even one distance computation
// dwarfs the cancellation latency must stop early — strictly fewer
// candidates examined than the full scan — and return the cancellation
// quickly.
func TestRunCancellationInterruptsLongKernels(t *testing.T) {
	w := testWorkload(t, 16, 1024)
	e, err := New(w, Options{Measure: MeasureDTW, Band: -1}) // unconstrained: n^2 DP per pair
	if err != nil {
		t.Fatal(err)
	}
	qi := 0
	ctx, cancel := context.WithCancel(context.Background())
	var watcherDone atomic.Bool
	go func() {
		defer watcherDone.Store(true)
		for e.Stats().Candidates == 0 {
			time.Sleep(10 * time.Microsecond)
		}
		cancel()
	}()
	start := time.Now()
	_, err = e.Run(ctx, Request{Measure: MeasureDTW, Kind: KindTopK, Index: &qi, K: 3, Workers: 1})
	elapsed := time.Since(start)
	cancel()
	if !errors.Is(err, qerr.ErrCancelled) {
		t.Fatalf("err = %v, want cancellation (elapsed %v)", err, elapsed)
	}
	if got, total := e.Stats().Candidates, int64(w.Len()-1); got >= total {
		t.Errorf("scan examined all %d candidates despite cancellation", got)
	}
	if elapsed > 5*time.Second {
		t.Errorf("cancellation took %v to take effect", elapsed)
	}
	// The accounting identity must survive cancellation: the interrupted
	// candidate is retracted, not left dangling in Candidates.
	if st := e.Stats(); st.Candidates != st.Completed+st.AbandonedEarly+st.PrunedByEnvelope+st.ResolvedByBounds+st.ResolvedEarly {
		t.Errorf("stats identity broken after cancellation: %+v", st)
	}
	for !watcherDone.Load() {
		time.Sleep(time.Millisecond)
	}
}

// TestRunDeadlineExceeded asserts an expired deadline surfaces as both
// ErrCancelled and context.DeadlineExceeded.
func TestRunDeadlineExceeded(t *testing.T) {
	w := testWorkload(t, 16, 1024)
	e, err := New(w, Options{Measure: MeasureDTW, Band: -1})
	if err != nil {
		t.Fatal(err)
	}
	qi := 0
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, err = e.Run(ctx, Request{Measure: MeasureDTW, Kind: KindTopK, Index: &qi, K: 3, Workers: 2})
	if !errors.Is(err, qerr.ErrCancelled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want ErrCancelled wrapping context.DeadlineExceeded", err)
	}
}

func TestKindParseAndString(t *testing.T) {
	for _, k := range Kinds() {
		parsed, err := ParseKind(k.String())
		if err != nil || parsed != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), parsed, err)
		}
	}
	if KindTopK.Probabilistic() || KindRange.Probabilistic() {
		t.Error("distance kinds must not report probabilistic")
	}
	if !KindProbTopK.Probabilistic() || !KindProbRange.Probabilistic() {
		t.Error("probabilistic kinds must report probabilistic")
	}
}
