module uncertts

go 1.24
